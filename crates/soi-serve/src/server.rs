//! The serve scheduler: accept/reader threads feed a bounded admission
//! queue; one executor thread drains it in geometry-coalesced batches.
//!
//! Threading model:
//!
//! * **Accept thread** — blocks on the [`ServiceListener`], spawns one
//!   detached reader thread per connection, exits when the shutdown
//!   token fires.
//! * **Reader threads** (one per connection) — decode frames, do all
//!   *semantic* validation and admission control, and push accepted jobs
//!   onto the shared queue. Rejections (malformed, out-of-range,
//!   overloaded) are answered right here with a typed [`Reject`]; the
//!   queue only ever holds executable work. An idle connection times out
//!   and is closed; a vanished client is counted and released.
//! * **Executor thread** (exactly one) — drains up to `max_batch` jobs
//!   at a time, groups them by `(N, P, digits, kind)`, and runs each
//!   group through one cached [`Engine`](crate::engine::Engine), so
//!   compatible requests share plans, window coefficients, and workspace
//!   arenas. One executor means compute results are produced in a
//!   deterministic order for a given queue content; concurrency across
//!   *requests* comes from batching and from the worker pool inside each
//!   transform, not from racing executors.
//!
//! Deadlines are relative budgets from arrival. The admission queue
//! re-checks them at execute time: a request that expired while queued
//! gets a typed [`RejectCode::Expired`] and is never partially computed.

use crate::engine::EngineCache;
use crate::proto::{
    Reject, RejectCode, Request, RequestKind, StatsSnapshot, TAG_BYE, TAG_REJECT, TAG_REQUEST,
    TAG_RESPONSE, TAG_SHUTDOWN, TAG_STATS, TAG_STATS_REQUEST,
};
use crate::stats::Registry;
use soi_core::ThreadPool;
use soi_trace::Trace;
use soi_wire::{ServiceConn, ServiceListener, ServiceWriter, ShutdownToken, WireError};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`host:0` picks a free port).
    pub addr: String,
    /// Worker threads inside each transform.
    pub threads: usize,
    /// Admission queue capacity; a request arriving past it is shed with
    /// a typed `Overloaded` reject.
    pub queue_cap: usize,
    /// Most requests drained into one executor pass.
    pub max_batch: usize,
    /// Resident engine (geometry) cap for the executor cache.
    pub engine_cap: usize,
    /// Reader-side idle deadline: a connection silent this long is
    /// closed and its thread released.
    pub idle_timeout: Duration,
    /// Batch compatible requests through shared engines. Off, every
    /// request builds a fresh engine — the unamortized baseline the
    /// `SOI_NO_BATCH=1` ablation measures.
    pub batching: bool,
    /// Per-frame write deadline.
    pub op_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            threads: 1,
            queue_cap: 64,
            max_batch: 32,
            engine_cap: 8,
            idle_timeout: Duration::from_secs(30),
            batching: true,
            op_timeout: Duration::from_secs(20),
        }
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok().filter(|&v| v > 0)
}

impl ServeConfig {
    /// Defaults overridden by the environment: `SOI_SERVE_QUEUE`,
    /// `SOI_SERVE_BATCH`, `SOI_SERVE_ENGINES`, `SOI_SERVE_IDLE_MS`, and
    /// the ablation switch `SOI_NO_BATCH=1`.
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Some(v) = env_usize("SOI_SERVE_QUEUE") {
            cfg.queue_cap = v;
        }
        if let Some(v) = env_usize("SOI_SERVE_BATCH") {
            cfg.max_batch = v;
        }
        if let Some(v) = env_usize("SOI_SERVE_ENGINES") {
            cfg.engine_cap = v;
        }
        if let Some(v) = env_usize("SOI_SERVE_IDLE_MS") {
            cfg.idle_timeout = Duration::from_millis(v as u64);
        }
        if std::env::var("SOI_NO_BATCH").map(|v| v == "1").unwrap_or(false) {
            cfg.batching = false;
        }
        cfg
    }
}

/// One admitted request waiting for the executor.
struct Job {
    req: Request,
    arrival: Instant,
    writer: ServiceWriter,
}

/// State shared by the accept, reader, and executor threads.
struct Shared {
    cfg: ServeConfig,
    queue: Mutex<VecDeque<Job>>,
    cv: Condvar,
    stop: AtomicBool,
    stats: Registry,
}

impl Shared {
    fn stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

/// A running server. Dropping the handle does *not* stop it; call
/// [`Server::shutdown`] (or send a SHUTDOWN frame) then [`Server::join`].
pub struct Server {
    addr: String,
    shared: Arc<Shared>,
    token: ShutdownToken,
    accept: Option<std::thread::JoinHandle<()>>,
    executor: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind and start the accept + executor threads.
    pub fn start(cfg: ServeConfig) -> Result<Server, WireError> {
        let listener = ServiceListener::bind(&cfg.addr, cfg.op_timeout)?;
        let addr = listener.local_addr();
        let token = listener.shutdown_token();
        let shared = Arc::new(Shared {
            cfg,
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
            stats: Registry::new(),
        });

        let accept = {
            let shared = Arc::clone(&shared);
            let token = token.clone();
            std::thread::Builder::new()
                .name("soi-serve-accept".into())
                .spawn(move || accept_loop(listener, shared, token))
                .map_err(|e| WireError::Io(format!("spawn accept thread: {e}")))?
        };
        let executor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("soi-serve-exec".into())
                .spawn(move || executor_loop(shared))
                .map_err(|e| WireError::Io(format!("spawn executor thread: {e}")))?
        };

        Ok(Server {
            addr,
            shared,
            token,
            accept: Some(accept),
            executor: Some(executor),
        })
    }

    /// The bound address (resolved port included).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Point-in-time stats snapshot (same contents as the STATS frame).
    pub fn stats(&self) -> StatsSnapshot {
        let depth = self.shared.queue.lock().expect("serve queue poisoned").len() as u64;
        self.shared.stats.snapshot(depth)
    }

    /// Stop accepting, let the executor drain the queue, wake everyone.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.token.fire();
        self.shared.cv.notify_all();
    }

    /// Wait for the accept and executor threads to exit. Reader threads
    /// are detached; they exit on disconnect or at their idle deadline.
    pub fn join(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.executor.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: ServiceListener, shared: Arc<Shared>, token: ShutdownToken) {
    loop {
        match listener.accept() {
            Ok(Some(conn)) => {
                let shared = Arc::clone(&shared);
                let token = token.clone();
                // Detached: a reader thread's lifetime is its
                // connection's, bounded by the idle deadline.
                let _ = std::thread::Builder::new()
                    .name("soi-serve-conn".into())
                    .spawn(move || reader_loop(conn, shared, token));
            }
            Ok(None) => return, // shutdown token fired
            Err(_) if shared.stopped() => return,
            Err(_) => continue, // transient accept error; keep serving
        }
    }
}

/// Semantic validation: everything the pipeline would either reject
/// deeper (wrapped in less useful errors) or `assert!` on (segment/band
/// range). Returns the reject message on failure.
fn validate(req: &Request) -> Result<(), String> {
    if req.n == 0 || req.p == 0 {
        return Err(format!("N = {} and P = {} must be positive", req.n, req.p));
    }
    if req.n % req.p != 0 {
        return Err(format!("P = {} does not divide N = {}", req.p, req.n));
    }
    if req.kind.is_real() && req.p % 2 != 0 {
        return Err(format!(
            "real-input kinds need an even segment count, got P = {}",
            req.p
        ));
    }
    match req.kind {
        RequestKind::Segment | RequestKind::RealSegment if req.arg >= req.p => Err(format!(
            "segment {} out of range (P = {})",
            req.arg, req.p
        )),
        RequestKind::Band | RequestKind::RealBand if req.arg >= req.n => Err(format!(
            "band start {} out of range (N = {})",
            req.arg, req.n
        )),
        _ => Ok(()),
    }
}

fn reject(writer: &ServiceWriter, id: u64, code: RejectCode, message: String) {
    let _ = writer.send(TAG_REJECT, &Reject { id, code, message }.encode());
}

fn reader_loop(mut conn: ServiceConn, shared: Arc<Shared>, token: ShutdownToken) {
    shared.stats.connection_opened();
    let writer = conn.writer();
    loop {
        if shared.stopped() {
            break;
        }
        match conn.read(shared.cfg.idle_timeout) {
            Ok((TAG_REQUEST, payload)) => {
                let bytes_in = payload.len() as u64;
                let req = match Request::decode(payload) {
                    Ok(r) => r,
                    Err(e) => {
                        // Undecodable: no trustworthy id or tenant.
                        reject(&writer, 0, RejectCode::BadRequest, e.to_string());
                        continue;
                    }
                };
                shared.stats.record_request(&req.tenant, bytes_in);
                if let Err(msg) = validate(&req) {
                    shared.stats.record_bad(&req.tenant);
                    reject(&writer, req.id, RejectCode::BadRequest, msg);
                    continue;
                }
                let mut q = shared.queue.lock().expect("serve queue poisoned");
                if q.len() >= shared.cfg.queue_cap {
                    drop(q);
                    shared.stats.record_shed(&req.tenant);
                    reject(
                        &writer,
                        req.id,
                        RejectCode::Overloaded,
                        format!("admission queue full ({} queued)", shared.cfg.queue_cap),
                    );
                    continue;
                }
                q.push_back(Job {
                    req,
                    arrival: Instant::now(),
                    writer: writer.clone(),
                });
                drop(q);
                shared.cv.notify_one();
            }
            Ok((TAG_STATS_REQUEST, _)) => {
                let depth = shared.queue.lock().expect("serve queue poisoned").len() as u64;
                let _ = writer.send(TAG_STATS, &shared.stats.snapshot(depth).encode());
            }
            Ok((TAG_SHUTDOWN, _)) => {
                let _ = writer.send(TAG_BYE, &[]);
                shared.stop.store(true, Ordering::SeqCst);
                token.fire();
                shared.cv.notify_all();
                break;
            }
            Ok((TAG_BYE, _)) => break, // clean client goodbye
            Ok((tag, _)) => {
                reject(
                    &writer,
                    0,
                    RejectCode::BadRequest,
                    format!("unexpected frame tag {tag:#04x} on a serve connection"),
                );
                break;
            }
            Err(WireError::Timeout { .. }) => {
                // A shutdown poke can look like idle if it lands between
                // frames; don't count those.
                if !shared.stopped() {
                    shared.stats.idle_closed();
                }
                break;
            }
            Err(WireError::PeerLost { .. }) => {
                shared.stats.peer_lost();
                break;
            }
            Err(_) => break,
        }
    }
    shared.stats.connection_closed();
}

fn executor_loop(shared: Arc<Shared>) {
    let pool = Arc::new(ThreadPool::new(shared.cfg.threads));
    let mut engines = EngineCache::new(shared.cfg.engine_cap, Arc::clone(&pool));
    let trace = Trace::disabled();
    let mut batch: Vec<Job> = Vec::new();
    let mut payload: Vec<u8> = Vec::new();
    loop {
        {
            let mut q = shared.queue.lock().expect("serve queue poisoned");
            while q.is_empty() && !shared.stopped() {
                q = shared.cv.wait(q).expect("serve queue poisoned");
            }
            if q.is_empty() {
                // Stopped with nothing left: every admitted request has
                // been answered.
                return;
            }
            let take = if shared.cfg.batching { shared.cfg.max_batch } else { 1 };
            let take = take.min(q.len());
            batch.extend(q.drain(..take));
        }
        let size = batch.len() as u64;
        shared.stats.record_batch(size);
        trace.span_begin("serve_batch", None);
        trace.counter("serve.batch_size", size as f64);
        if shared.cfg.batching {
            run_batched(&mut batch, &mut engines, &shared, &mut payload);
        } else {
            run_unbatched(&mut batch, &pool, &shared, &mut payload);
        }
        trace.span_end("serve_batch", None);
        batch.clear();
    }
}

fn deadline_expired(job: &Job) -> bool {
    job.req.deadline_ms > 0
        && job.arrival.elapsed() >= Duration::from_millis(job.req.deadline_ms)
}

fn answer(
    job: &Job,
    engines: &mut EngineCache,
    shared: &Shared,
    payload: &mut Vec<u8>,
) {
    if deadline_expired(job) {
        shared.stats.record_expired(&job.req.tenant);
        reject(
            &job.writer,
            job.req.id,
            RejectCode::Expired,
            format!(
                "deadline of {} ms expired after {} ms in queue",
                job.req.deadline_ms,
                job.arrival.elapsed().as_millis()
            ),
        );
        return;
    }
    // Build (or fetch) the engine first and mirror the cache counters
    // into the registry *before* any reply leaves, so a client that sees
    // its response and immediately snapshots stats observes consistent
    // accounting.
    let (b0, e0) = (engines.builds(), engines.evictions());
    if let Err(e) = engines.get(job.req.n, job.req.p, job.req.digits) {
        shared.stats.record_bad(&job.req.tenant);
        reject(&job.writer, job.req.id, RejectCode::BadRequest, e.to_string());
        return;
    }
    for _ in b0..engines.builds() {
        shared.stats.record_engine_build();
    }
    for _ in e0..engines.evictions() {
        shared.stats.record_engine_eviction();
    }
    let engine = engines
        .get(job.req.n, job.req.p, job.req.digits)
        .expect("engine resident after build");
    let t0 = Instant::now();
    match engine.execute(&job.req) {
        Ok(bins) => {
            let compute_ns = t0.elapsed().as_nanos() as u64;
            crate::proto::encode_response_into(job.req.id, compute_ns, bins, payload);
            let bytes_out = payload.len() as u64;
            // Account before sending (same consistency argument); a send
            // failure means the client vanished mid-reply, which the
            // reader thread records as a lost peer.
            shared.stats.record_ok(&job.req.tenant, bytes_out, compute_ns);
            let _ = job.writer.send(TAG_RESPONSE, payload);
        }
        Err(e) => {
            shared.stats.record_bad(&job.req.tenant);
            reject(&job.writer, job.req.id, RejectCode::BadRequest, e.to_string());
        }
    }
}

/// Batched path: group the drained jobs by engine key, first-appearance
/// order, FIFO within each group, and run every group through one cached
/// engine. Engine state (plans, coefficients, arenas) is hot across the
/// whole group.
fn run_batched(
    batch: &mut Vec<Job>,
    engines: &mut EngineCache,
    shared: &Shared,
    payload: &mut Vec<u8>,
) {
    // Geometry key per job; stable grouping without a HashMap allocation
    // per batch (batches are small — max_batch defaults to 32).
    let mut order: Vec<usize> = Vec::with_capacity(batch.len());
    let mut keys: Vec<(usize, usize, u32, RequestKind)> = Vec::with_capacity(batch.len());
    for job in batch.iter() {
        keys.push((job.req.n, job.req.p, job.req.digits, job.req.kind));
    }
    let mut seen: Vec<(usize, usize, u32, RequestKind)> = Vec::new();
    for key in &keys {
        if !seen.contains(key) {
            seen.push(*key);
        }
    }
    for key in &seen {
        for (i, k) in keys.iter().enumerate() {
            if k == key {
                order.push(i);
            }
        }
    }
    for &i in &order {
        answer(&batch[i], engines, shared, payload);
    }
}

/// Unbatched ablation: every request plans and allocates from scratch —
/// a fresh engine (pipeline, window design, workspace arenas) per
/// request. The process-global `Planner` twiddle cache is still shared
/// (it is process-wide by design), so the ablation isolates the
/// *serve-layer* amortization: engine reuse and grouped execution.
fn run_unbatched(
    batch: &mut Vec<Job>,
    pool: &Arc<ThreadPool>,
    shared: &Shared,
    payload: &mut Vec<u8>,
) {
    for job in batch.iter() {
        let mut fresh = EngineCache::new(1, Arc::clone(pool));
        answer(job, &mut fresh, shared, payload);
    }
}
