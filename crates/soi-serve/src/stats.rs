//! Server-side accounting: lock-free global counters plus a per-tenant
//! map, snapshotted on demand into the wire [`StatsSnapshot`].
//!
//! `soi-trace` counters want `&'static str` names (they are designed for
//! a fixed vocabulary of pipeline stages), so per-tenant accounting —
//! whose key space is open — lives here instead, in a `BTreeMap` so
//! snapshots enumerate tenants in a deterministic order.

use crate::proto::{StatsSnapshot, TenantStats};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

#[derive(Debug, Default)]
struct TenantCounters {
    requests: u64,
    ok: u64,
    shed: u64,
    expired: u64,
    rejected: u64,
    bytes_in: u64,
    bytes_out: u64,
    compute_ns: u64,
}

/// Shared accounting for one server instance. All methods are callable
/// from any reader/executor thread.
#[derive(Debug, Default)]
pub struct Registry {
    connections: AtomicU64,
    active_connections: AtomicU64,
    idle_closed: AtomicU64,
    peer_lost: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    max_batch: AtomicU64,
    engine_builds: AtomicU64,
    engine_evictions: AtomicU64,
    tenants: Mutex<BTreeMap<String, TenantCounters>>,
}

impl Registry {
    /// Fresh, all-zero registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn with_tenant(&self, tenant: &str, f: impl FnOnce(&mut TenantCounters)) {
        let mut map = self.tenants.lock().expect("stats registry poisoned");
        f(map.entry(tenant.to_string()).or_default());
    }

    /// A connection was accepted.
    pub fn connection_opened(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
        self.active_connections.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection's reader loop exited, for whichever reason.
    pub fn connection_closed(&self) {
        self.active_connections.fetch_sub(1, Ordering::Relaxed);
    }

    /// The idle deadline closed a connection.
    pub fn idle_closed(&self) {
        self.idle_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// A client vanished without a BYE.
    pub fn peer_lost(&self) {
        self.peer_lost.fetch_add(1, Ordering::Relaxed);
    }

    /// A request arrived (counted before admission).
    pub fn record_request(&self, tenant: &str, bytes_in: u64) {
        self.with_tenant(tenant, |t| {
            t.requests += 1;
            t.bytes_in += bytes_in;
        });
    }

    /// A request was answered with a RESPONSE.
    pub fn record_ok(&self, tenant: &str, bytes_out: u64, compute_ns: u64) {
        self.with_tenant(tenant, |t| {
            t.ok += 1;
            t.bytes_out += bytes_out;
            t.compute_ns += compute_ns;
        });
    }

    /// Admission control shed a request.
    pub fn record_shed(&self, tenant: &str) {
        self.with_tenant(tenant, |t| t.shed += 1);
    }

    /// A queued request's deadline expired before compute.
    pub fn record_expired(&self, tenant: &str) {
        self.with_tenant(tenant, |t| t.expired += 1);
    }

    /// A request was rejected as invalid.
    pub fn record_bad(&self, tenant: &str) {
        self.with_tenant(tenant, |t| t.rejected += 1);
    }

    /// A batch of `size` requests was executed together.
    pub fn record_batch(&self, size: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests.fetch_add(size, Ordering::Relaxed);
        self.max_batch.fetch_max(size, Ordering::Relaxed);
    }

    /// An engine (pipeline + workspace arena) was built.
    pub fn record_engine_build(&self) {
        self.engine_builds.fetch_add(1, Ordering::Relaxed);
    }

    /// An engine was evicted from the executor cache.
    pub fn record_engine_eviction(&self) {
        self.engine_evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time snapshot. `queue_depth` is sampled by the caller
    /// (the queue belongs to the scheduler, not the registry); the
    /// plan-cache numbers come from the process-global
    /// [`soi_fft::Planner`].
    pub fn snapshot(&self, queue_depth: u64) -> StatsSnapshot {
        let plan = soi_fft::Planner::<f64>::global().plan_cache_stats();
        let tenants = self
            .tenants
            .lock()
            .expect("stats registry poisoned")
            .iter()
            .map(|(name, t)| TenantStats {
                tenant: name.clone(),
                requests: t.requests,
                ok: t.ok,
                shed: t.shed,
                expired: t.expired,
                rejected: t.rejected,
                bytes_in: t.bytes_in,
                bytes_out: t.bytes_out,
                compute_ns: t.compute_ns,
            })
            .collect();
        StatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            active_connections: self.active_connections.load(Ordering::Relaxed),
            idle_closed: self.idle_closed.load(Ordering::Relaxed),
            peer_lost: self.peer_lost.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            queue_depth,
            plan_hits: plan.hits,
            plan_misses: plan.misses,
            plan_evictions: plan.evictions,
            engine_builds: self.engine_builds.load(Ordering::Relaxed),
            engine_evictions: self.engine_evictions.load(Ordering::Relaxed),
            tenants,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_recorded_events_in_tenant_order() {
        let r = Registry::new();
        r.connection_opened();
        r.connection_opened();
        r.connection_closed();
        r.idle_closed();
        r.record_request("zeta", 100);
        r.record_request("alpha", 50);
        r.record_ok("alpha", 800, 1234);
        r.record_shed("zeta");
        r.record_batch(4);
        r.record_batch(7);
        let s = r.snapshot(3);
        assert_eq!(s.connections, 2);
        assert_eq!(s.active_connections, 1);
        assert_eq!(s.idle_closed, 1);
        assert_eq!(s.queue_depth, 3);
        assert_eq!((s.batches, s.batched_requests, s.max_batch), (2, 11, 7));
        // BTreeMap => deterministic order.
        let names: Vec<&str> = s.tenants.iter().map(|t| t.tenant.as_str()).collect();
        assert_eq!(names, ["alpha", "zeta"]);
        assert_eq!(s.tenants[0].ok, 1);
        assert_eq!(s.tenants[0].compute_ns, 1234);
        assert_eq!(s.tenants[1].shed, 1);
    }
}
