//! Concurrency-facing serve tests: the same request set must produce
//! bitwise-identical responses no matter how many client threads issue
//! it, deadlines must reject with a typed frame (never a partial
//! result), and connection lifecycle events must be accounted.

use soi_num::{c64, Complex64};
use soi_serve::{Reply, Request, RequestKind, Samples, ServeClient, ServeConfig, Server};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(60);

fn csig(n: usize, seed: u64) -> Vec<Complex64> {
    (0..n)
        .map(|i| {
            let t = (i as u64).wrapping_mul(seed | 1) as f64;
            c64((t * 1e-4).sin(), (t * 7e-5).cos())
        })
        .collect()
}

fn rsig(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|i| ((i as u64).wrapping_mul(seed | 1) as f64 * 1e-4).sin())
        .collect()
}

/// A fixed, varied request set: two geometries, all six kinds, inputs
/// keyed by id so every run regenerates identical payloads.
fn request_set() -> Vec<Request> {
    let kinds = [
        (RequestKind::Full, 0usize),
        (RequestKind::Segment, 1),
        (RequestKind::Band, 500),
        (RequestKind::RealFull, 0),
        (RequestKind::RealSegment, 3),
        (RequestKind::RealBand, 129),
    ];
    let mut reqs = Vec::new();
    let mut id = 0u64;
    for &(n, p) in &[(1024usize, 4usize), (2048, 4)] {
        for &(kind, arg) in &kinds {
            reqs.push(Request {
                id,
                tenant: format!("tenant-{}", id % 3),
                n,
                p,
                digits: 10,
                kind,
                arg,
                deadline_ms: 0,
                samples: if kind.is_real() {
                    Samples::Real(rsig(n, id))
                } else {
                    Samples::Complex(csig(n, id))
                },
            });
            id += 1;
        }
    }
    reqs
}

/// Issue `reqs` from `threads` client connections (round-robin split)
/// and return every response keyed by id.
fn run_clients(addr: &str, reqs: &[Request], threads: usize) -> BTreeMap<u64, Vec<Complex64>> {
    let addr = addr.to_string();
    let reqs: Arc<Vec<Request>> = Arc::new(reqs.to_vec());
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let addr = addr.clone();
            let reqs = Arc::clone(&reqs);
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(&addr, TIMEOUT).unwrap();
                let mine: Vec<&Request> =
                    reqs.iter().skip(t).step_by(threads).collect();
                // Pipeline all sends, then drain: responses may arrive
                // reordered across ids (batch grouping), so key by id.
                for req in &mine {
                    client.send_request(req).unwrap();
                }
                let mut got = BTreeMap::new();
                for _ in 0..mine.len() {
                    match client.recv().unwrap() {
                        Reply::Ok(resp) => {
                            got.insert(resp.id, resp.bins);
                        }
                        other => panic!("expected bins, got {other:?}"),
                    }
                }
                client.bye().unwrap();
                got
            })
        })
        .collect();
    let mut all = BTreeMap::new();
    for h in handles {
        all.extend(h.join().unwrap());
    }
    all
}

#[test]
fn responses_are_bitwise_identical_for_1_4_and_8_client_threads() {
    let mut server = Server::start(ServeConfig {
        threads: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let reqs = request_set();
    let baseline = run_clients(server.addr(), &reqs, 1);
    assert_eq!(baseline.len(), reqs.len());
    for threads in [4usize, 8] {
        let got = run_clients(server.addr(), &reqs, threads);
        assert_eq!(got.len(), reqs.len(), "{threads} clients: response count");
        for (id, bins) in &baseline {
            let other = &got[id];
            assert_eq!(bins.len(), other.len(), "id {id}: bin count");
            for (i, (a, b)) in bins.iter().zip(other).enumerate() {
                assert_eq!(
                    a.re.to_bits(),
                    b.re.to_bits(),
                    "{threads} clients, id {id}, bin {i}: re differs"
                );
                assert_eq!(
                    a.im.to_bits(),
                    b.im.to_bits(),
                    "{threads} clients, id {id}, bin {i}: im differs"
                );
            }
        }
    }
    let mut shutdown = ServeClient::connect(server.addr(), TIMEOUT).unwrap();
    shutdown.shutdown().unwrap();
    server.join();
}

#[test]
fn queued_past_deadline_is_a_typed_expired_reject_never_a_partial_result() {
    let mut server = Server::start(ServeConfig::default()).unwrap();
    let mut client = ServeClient::connect(server.addr(), TIMEOUT).unwrap();
    let n = 65536;
    let p = 8;
    // Three heavy transforms stack up in front; the fourth request's
    // 1 ms budget cannot survive the queue wait behind them.
    for id in 0..3u64 {
        client
            .send_request(&Request {
                id,
                tenant: "heavy".into(),
                n,
                p,
                digits: 13,
                kind: RequestKind::Full,
                arg: 0,
                deadline_ms: 0,
                samples: Samples::Complex(csig(n, id)),
            })
            .unwrap();
    }
    client
        .send_request(&Request {
            id: 99,
            tenant: "late".into(),
            n,
            p,
            digits: 13,
            kind: RequestKind::Full,
            arg: 0,
            deadline_ms: 1,
            samples: Samples::Complex(csig(n, 99)),
        })
        .unwrap();
    let mut ok = 0;
    let mut expired = false;
    for _ in 0..4 {
        match client.recv().unwrap() {
            Reply::Ok(resp) => {
                assert_ne!(resp.id, 99, "expired request must never produce bins");
                assert_eq!(resp.bins.len(), n);
                ok += 1;
            }
            Reply::Rejected(rej) => {
                assert_eq!(rej.id, 99);
                assert_eq!(rej.code, soi_serve::RejectCode::Expired, "{}", rej.message);
                expired = true;
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert_eq!(ok, 3);
    assert!(expired, "deadline_ms = 1 behind three N = 65536 transforms must expire");
    let stats = client.stats().unwrap();
    let late = stats.tenants.iter().find(|t| t.tenant == "late").unwrap();
    assert_eq!((late.expired, late.ok), (1, 0));
    client.shutdown().unwrap();
    server.join();
}

#[test]
fn idle_connections_time_out_and_clean_byes_are_not_peer_losses() {
    let mut server = Server::start(ServeConfig {
        idle_timeout: Duration::from_millis(150),
        ..ServeConfig::default()
    })
    .unwrap();
    // A client that connects and says nothing: reaped at the idle
    // deadline, reader thread released.
    let idle = ServeClient::connect(server.addr(), TIMEOUT).unwrap();
    // A client that says a clean goodbye.
    let mut polite = ServeClient::connect(server.addr(), TIMEOUT).unwrap();
    polite.bye().unwrap();
    drop(polite);
    // Wait out the idle deadline, polling the server-side snapshot.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let s = server.stats();
        if s.idle_closed >= 1 && s.active_connections == 0 {
            assert_eq!(s.idle_closed, 1);
            assert_eq!(s.peer_lost, 0, "a BYE must not count as a lost peer");
            assert_eq!(s.connections, 2);
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "idle connection was not reaped: {s:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    drop(idle);
    server.shutdown();
    server.join();
}
