//! End-to-end serve protocol tests: every response payload must be
//! bitwise identical to the direct in-process pipeline on the same
//! input, rejections must be typed, and the stats snapshot must account
//! for what happened.

use soi_core::{SoiFft, SoiParams, SoiRealWorkspace, SoiWorkspace};
use soi_num::{c64, Complex64};
use soi_serve::{
    preset_for_digits, Reply, RequestKind, Samples, ServeClient, ServeConfig, Server,
};
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(30);

fn csig(n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|i| {
            c64(
                (i as f64 * 0.37).sin() + 0.25 * (i as f64 * 0.011).cos(),
                (i as f64 * 0.23).cos() - 0.5 / (i + 1) as f64,
            )
        })
        .collect()
}

fn rsig(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (i as f64 * 0.37).sin() + 0.5 * (i as f64 * 0.013).cos())
        .collect()
}

fn request(
    id: u64,
    n: usize,
    p: usize,
    kind: RequestKind,
    arg: usize,
) -> soi_serve::Request {
    soi_serve::Request {
        id,
        tenant: "test".into(),
        n,
        p,
        digits: 10,
        kind,
        arg,
        deadline_ms: 0,
        samples: if kind.is_real() {
            Samples::Real(rsig(n))
        } else {
            Samples::Complex(csig(n))
        },
    }
}

fn assert_bits_eq(got: &[Complex64], want: &[Complex64]) {
    assert_eq!(got.len(), want.len(), "bin count mismatch");
    for (i, (a, b)) in got.iter().zip(want).enumerate() {
        assert_eq!(a.re.to_bits(), b.re.to_bits(), "re differs at bin {i}");
        assert_eq!(a.im.to_bits(), b.im.to_bits(), "im differs at bin {i}");
    }
}

/// The bins `transform_into`/`transform_real_into`/the serial zoom paths
/// produce for `request(…)`'s input — the ground truth every response
/// must match bitwise.
fn reference(n: usize, p: usize, kind: RequestKind, arg: usize) -> Vec<Complex64> {
    let params = SoiParams::with_preset(n, p, preset_for_digits(10)).unwrap();
    let soi = SoiFft::new(&params).unwrap();
    match kind {
        RequestKind::Full => {
            let mut ws = SoiWorkspace::new(&soi, 1);
            let mut y = vec![Complex64::ZERO; n];
            soi.transform_into(&csig(n), &mut y, &mut ws).unwrap();
            y
        }
        RequestKind::Segment => soi.transform_segment(&csig(n), arg).unwrap(),
        RequestKind::Band => soi.transform_band(&csig(n), arg).unwrap(),
        RequestKind::RealFull => {
            let mut ws = SoiRealWorkspace::new(&soi, 1);
            let mut y = vec![Complex64::ZERO; n / 2 + 1];
            soi.transform_real_into(&rsig(n), &mut y, &mut ws).unwrap();
            y
        }
        RequestKind::RealSegment => soi.transform_real_segment(&rsig(n), arg).unwrap(),
        RequestKind::RealBand => soi.transform_real_band(&rsig(n), arg).unwrap(),
    }
}

fn start(cfg: ServeConfig) -> Server {
    Server::start(cfg).expect("server starts")
}

#[test]
fn mixed_request_kinds_match_direct_pipeline_bitwise() {
    let mut server = start(ServeConfig {
        threads: 2,
        ..ServeConfig::default()
    });
    let mut client = ServeClient::connect(server.addr(), TIMEOUT).unwrap();
    let n = 4096;
    let p = 4;
    let cases = [
        (RequestKind::Full, 0),
        (RequestKind::Segment, 2),
        (RequestKind::Band, 777),
        (RequestKind::RealFull, 0),
        (RequestKind::RealSegment, 1),
        (RequestKind::RealBand, 37),
    ];
    for (id, &(kind, arg)) in cases.iter().enumerate() {
        let reply = client.call(&request(id as u64, n, p, kind, arg)).unwrap();
        match reply {
            Reply::Ok(resp) => {
                assert_eq!(resp.id, id as u64);
                assert_bits_eq(&resp.bins, &reference(n, p, kind, arg));
            }
            other => panic!("{}: expected bins, got {other:?}", kind.name()),
        }
    }
    client.shutdown().unwrap();
    server.join();
}

#[test]
fn unbatched_ablation_is_bitwise_identical_to_batched() {
    let run = |batching: bool| -> Vec<Vec<Complex64>> {
        let mut server = start(ServeConfig {
            batching,
            ..ServeConfig::default()
        });
        let mut client = ServeClient::connect(server.addr(), TIMEOUT).unwrap();
        let mut out = Vec::new();
        for (id, (kind, arg)) in [
            (RequestKind::Full, 0),
            (RequestKind::Segment, 3),
            (RequestKind::RealFull, 0),
        ]
        .into_iter()
        .enumerate()
        {
            match client.call(&request(id as u64, 2048, 4, kind, arg)).unwrap() {
                Reply::Ok(resp) => out.push(resp.bins),
                other => panic!("expected bins, got {other:?}"),
            }
        }
        client.shutdown().unwrap();
        server.join();
        out
    };
    let batched = run(true);
    let unbatched = run(false);
    for (a, b) in batched.iter().zip(&unbatched) {
        assert_bits_eq(a, b);
    }
}

#[test]
fn overload_is_a_typed_reject_and_counted_as_shed() {
    // queue_cap = 0: admission control sheds everything, deterministically.
    let mut server = start(ServeConfig {
        queue_cap: 0,
        ..ServeConfig::default()
    });
    let mut client = ServeClient::connect(server.addr(), TIMEOUT).unwrap();
    match client.call(&request(5, 1024, 4, RequestKind::Full, 0)).unwrap() {
        Reply::Rejected(rej) => {
            assert_eq!(rej.id, 5);
            assert_eq!(rej.code, soi_serve::RejectCode::Overloaded);
        }
        other => panic!("expected overload reject, got {other:?}"),
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.tenants.len(), 1);
    assert_eq!(stats.tenants[0].tenant, "test");
    assert_eq!(stats.tenants[0].requests, 1);
    assert_eq!(stats.tenants[0].shed, 1);
    assert_eq!(stats.tenants[0].ok, 0);
    client.shutdown().unwrap();
    server.join();
}

#[test]
fn invalid_requests_get_typed_bad_request_rejects() {
    let mut server = start(ServeConfig::default());
    let mut client = ServeClient::connect(server.addr(), TIMEOUT).unwrap();
    let cases = [
        // Segment index out of range (P = 4).
        request(1, 1024, 4, RequestKind::Segment, 4),
        // Band start out of range (N = 1024).
        request(2, 1024, 4, RequestKind::Band, 1024),
        // P does not divide N.
        request(3, 1000, 3, RequestKind::Full, 0),
        // Real input needs even P.
        {
            let mut r = request(4, 1000, 5, RequestKind::RealFull, 0);
            r.samples = Samples::Real(rsig(1000));
            r
        },
    ];
    for req in &cases {
        match client.call(req).unwrap() {
            Reply::Rejected(rej) => {
                assert_eq!(rej.id, req.id);
                assert_eq!(rej.code, soi_serve::RejectCode::BadRequest, "{}", rej.message);
            }
            other => panic!("id {}: expected bad-request reject, got {other:?}", req.id),
        }
    }
    // The connection survives rejects: a valid request still works.
    match client.call(&request(9, 1024, 4, RequestKind::Full, 0)).unwrap() {
        Reply::Ok(resp) => assert_eq!(resp.id, 9),
        other => panic!("expected bins after rejects, got {other:?}"),
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.tenants[0].rejected, 4);
    assert_eq!(stats.tenants[0].ok, 1);
    client.shutdown().unwrap();
    server.join();
}

#[test]
fn stats_snapshot_accounts_batches_engines_and_plan_cache() {
    let mut server = start(ServeConfig::default());
    let mut client = ServeClient::connect(server.addr(), TIMEOUT).unwrap();
    // Two geometries; several requests each, pipelined so the executor
    // has a chance to coalesce.
    let mut ids = Vec::new();
    for id in 0..6u64 {
        let n = if id % 2 == 0 { 1024 } else { 2048 };
        client.send_request(&request(id, n, 4, RequestKind::Full, 0)).unwrap();
        ids.push(id);
    }
    let mut got = 0;
    while got < ids.len() {
        match client.recv().unwrap() {
            Reply::Ok(_) => got += 1,
            other => panic!("expected bins, got {other:?}"),
        }
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.connections, 1);
    assert_eq!(stats.active_connections, 1);
    assert_eq!(stats.batched_requests, 6);
    assert!(stats.batches >= 1 && stats.batches <= 6);
    assert!(stats.max_batch >= 1);
    // Exactly two geometries were planned by this server's executor.
    assert_eq!(stats.engine_builds, 2);
    assert_eq!(stats.engine_evictions, 0);
    assert_eq!(stats.tenants[0].ok, 6);
    assert!(stats.tenants[0].bytes_in > 0);
    assert!(stats.tenants[0].bytes_out > 0);
    assert!(stats.tenants[0].compute_ns > 0);
    client.shutdown().unwrap();
    server.join();
}
