//! Per-rank virtual clocks.
//!
//! The runtime executes real data movement but simulated time: each rank
//! accumulates compute seconds (charged by the algorithm, either from wall
//! measurements or from a calibrated cost model) and communication seconds
//! (charged by the collectives from the fabric model). Collectives
//! synchronize clocks the way blocking MPI collectives synchronize ranks:
//! everyone leaves at `max(entry times) + op cost`.

/// A virtual clock with a compute/communication breakdown.
#[derive(Debug, Clone, Copy, Default)]
pub struct VirtualClock {
    now: f64,
    compute: f64,
    comm: f64,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Total compute seconds charged.
    pub fn compute_time(&self) -> f64 {
        self.compute
    }

    /// Total communication seconds charged.
    pub fn comm_time(&self) -> f64 {
        self.comm
    }

    /// Charge `dt` seconds of computation.
    pub fn charge_compute(&mut self, dt: f64) {
        assert!(dt >= 0.0 && dt.is_finite(), "bad compute charge {dt}");
        self.now += dt;
        self.compute += dt;
    }

    /// Charge `dt` seconds of communication.
    pub fn charge_comm(&mut self, dt: f64) {
        assert!(dt >= 0.0 && dt.is_finite(), "bad comm charge {dt}");
        self.now += dt;
        self.comm += dt;
    }

    /// Synchronize with a collective: jump to the common entry time
    /// `sync_at` (≥ our own), then charge the op cost as communication.
    /// The wait itself is accounted as communication time too, matching
    /// how MPI profilers attribute time blocked in a collective.
    pub fn synchronize(&mut self, sync_at: f64, op_cost: f64) {
        assert!(
            sync_at + 1e-12 >= self.now,
            "collective sync point {sync_at} behind local clock {}",
            self.now
        );
        let wait = (sync_at - self.now).max(0.0);
        self.now = sync_at;
        self.comm += wait;
        self.charge_comm(op_cost);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut c = VirtualClock::new();
        c.charge_compute(1.5);
        c.charge_comm(0.5);
        c.charge_compute(1.0);
        assert!((c.now() - 3.0).abs() < 1e-15);
        assert!((c.compute_time() - 2.5).abs() < 1e-15);
        assert!((c.comm_time() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn synchronize_jumps_forward_and_bills_wait_as_comm() {
        let mut c = VirtualClock::new();
        c.charge_compute(1.0);
        c.synchronize(4.0, 0.25);
        assert!((c.now() - 4.25).abs() < 1e-15);
        assert!((c.compute_time() - 1.0).abs() < 1e-15);
        // 3.0 s of waiting + 0.25 s of wire time.
        assert!((c.comm_time() - 3.25).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "behind local clock")]
    fn synchronize_cannot_go_backwards() {
        let mut c = VirtualClock::new();
        c.charge_compute(10.0);
        c.synchronize(5.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "bad compute charge")]
    fn rejects_negative_charge() {
        VirtualClock::new().charge_compute(-1.0);
    }
}
