//! The cluster runner: spawns one OS thread per rank, wires the channel
//! mesh, runs a closure per rank, and gathers results + per-rank reports.

use crate::comm::{CommStats, RankComm, Shared};
use crate::netmodel::Fabric;
use soi_trace::{Trace, TraceSet};
use std::sync::mpsc::channel;
use std::sync::Arc;

/// Final accounting for one rank after a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankReport {
    /// Rank id.
    pub rank: usize,
    /// Final virtual time (compute + comm + waits), seconds.
    pub sim_time: f64,
    /// Compute seconds charged.
    pub compute_time: f64,
    /// Communication seconds charged (incl. waiting in collectives).
    pub comm_time: f64,
    /// Traffic counters.
    pub stats: CommStats,
}

/// A simulated machine: `size` ranks over a [`Fabric`].
///
/// ```
/// use soi_simnet::Cluster;
///
/// // Every rank contributes its id; everyone learns the sum.
/// let sums = Cluster::ideal(4).run_collect(|comm| comm.allreduce_sum(comm.rank() as f64));
/// assert_eq!(sums, vec![6.0; 4]);
/// ```
#[derive(Debug, Clone)]
pub struct Cluster {
    size: usize,
    fabric: Fabric,
}

impl Cluster {
    /// A cluster of `size` ranks on the given fabric.
    pub fn new(size: usize, fabric: Fabric) -> Self {
        assert!(size >= 1, "cluster needs at least one rank");
        Self { size, fabric }
    }

    /// A cluster on the zero-cost fabric (pure correctness runs).
    pub fn ideal(size: usize) -> Self {
        Self::new(size, Fabric::Ideal)
    }

    /// Rank count.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The fabric model.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Run `f` once per rank (concurrently, real threads) and return the
    /// per-rank `(result, report)` pairs in rank order.
    ///
    /// Ranks communicate only through their [`RankComm`]; a panicking rank
    /// aborts the whole run with its panic payload.
    pub fn run<R, F>(&self, f: F) -> Vec<(R, RankReport)>
    where
        R: Send,
        F: Fn(&mut RankComm) -> R + Send + Sync,
    {
        let traces: Vec<Trace> = (0..self.size).map(|_| Trace::disabled()).collect();
        self.run_with_traces(f, &traces)
    }

    /// Like [`Cluster::run`], but with per-rank event recording enabled:
    /// every send/recv/collective (and any spans the per-rank closure
    /// opens through [`RankComm::trace`]) lands in the returned
    /// [`TraceSet`], ready for `validate()` or a JSON-lines sink.
    pub fn run_traced<R, F>(&self, f: F) -> (Vec<(R, RankReport)>, TraceSet)
    where
        R: Send,
        F: Fn(&mut RankComm) -> R + Send + Sync,
    {
        let traces: Vec<Trace> = (0..self.size).map(Trace::recording).collect();
        let results = self.run_with_traces(f, &traces);
        let set = TraceSet::from_streams(traces.iter().map(Trace::drain).collect());
        (results, set)
    }

    fn run_with_traces<R, F>(&self, f: F, traces: &[Trace]) -> Vec<(R, RankReport)>
    where
        R: Send,
        F: Fn(&mut RankComm) -> R + Send + Sync,
    {
        let p = self.size;
        let shared = Arc::new(Shared::new(p, self.fabric.clone()));
        // Dense channel mesh: tx[src][dst] feeds rx[dst][src].
        let mut txs: Vec<Vec<_>> = (0..p).map(|_| Vec::with_capacity(p)).collect();
        let mut rxs: Vec<Vec<_>> = (0..p).map(|_| Vec::with_capacity(p)).collect();
        for src in 0..p {
            for _dst in 0..p {
                let (tx, rx) = channel();
                txs[src].push(tx);
                rxs[src].push(rx);
            }
        }
        // rxs[src][dst] is the receiving end of src→dst; regroup so each
        // rank owns its inbound row: inbox[dst][src].
        let mut inboxes: Vec<Vec<_>> = (0..p).map(|_| Vec::with_capacity(p)).collect();
        for (src, row) in rxs.into_iter().enumerate() {
            for (dst, rx) in row.into_iter().enumerate() {
                let _ = src;
                inboxes[dst].push(rx);
            }
        }
        let mut comms: Vec<RankComm> = txs
            .into_iter()
            .zip(inboxes)
            .enumerate()
            .map(|(rank, (senders, receivers))| {
                RankComm::new(rank, shared.clone(), senders, receivers, traces[rank].clone())
            })
            .collect();

        let mut slots: Vec<Option<(R, RankReport)>> = (0..p).map(|_| None).collect();
        // A panicking rank propagates its payload when the scope joins.
        std::thread::scope(|scope| {
            let f = &f;
            for (slot, comm) in slots.iter_mut().zip(comms.iter_mut()) {
                scope.spawn(move || {
                    let result = f(comm);
                    let report = RankReport {
                        rank: comm.rank(),
                        sim_time: comm.clock().now(),
                        compute_time: comm.clock().compute_time(),
                        comm_time: comm.clock().comm_time(),
                        stats: comm.stats(),
                    };
                    *slot = Some((result, report));
                });
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("rank produced no result"))
            .collect()
    }

    /// Convenience: run and return only the results.
    pub fn run_collect<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut RankComm) -> R + Send + Sync,
    {
        self.run(f).into_iter().map(|(r, _)| r).collect()
    }

    /// The slowest rank's virtual time from a set of reports — the
    /// execution time of the simulated job.
    pub fn makespan(reports: &[RankReport]) -> f64 {
        reports.iter().map(|r| r.sim_time).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_see_their_ids() {
        let ids = Cluster::ideal(5).run_collect(|c| (c.rank(), c.size()));
        for (i, (r, s)) in ids.iter().enumerate() {
            assert_eq!(*r, i);
            assert_eq!(*s, 5);
        }
    }

    #[test]
    fn all_to_all_routes_blocks_correctly() {
        let p = 4;
        let out = Cluster::ideal(p).run_collect(|c| {
            // send[d] = rank*10 + d → after exchange recv[s] = s*10 + rank.
            let send: Vec<u64> = (0..p).map(|d| (c.rank() * 10 + d) as u64).collect();
            let mut recv = vec![0u64; p];
            c.all_to_all(&send, &mut recv);
            recv
        });
        for (rank, recv) in out.iter().enumerate() {
            for (src, &v) in recv.iter().enumerate() {
                assert_eq!(v, (src * 10 + rank) as u64);
            }
        }
    }

    #[test]
    fn all_to_all_multi_element_blocks() {
        let p = 3;
        let block = 4;
        let out = Cluster::ideal(p).run_collect(|c| {
            let send: Vec<u32> = (0..p * block)
                .map(|i| (c.rank() * 1000 + i) as u32)
                .collect();
            let mut recv = vec![0u32; p * block];
            c.all_to_all(&send, &mut recv);
            recv
        });
        for (rank, recv) in out.iter().enumerate() {
            for src in 0..p {
                for i in 0..block {
                    assert_eq!(recv[src * block + i], (src * 1000 + rank * block + i) as u32);
                }
            }
        }
    }

    #[test]
    fn all_to_allv_concatenates_in_rank_order() {
        let p = 3;
        let out = Cluster::ideal(p).run_collect(|c| {
            // Rank r sends r+1 copies of its id to every rank.
            let counts = vec![c.rank() + 1; p];
            let send = vec![c.rank() as u8; (c.rank() + 1) * p];
            c.all_to_allv(&send, &counts)
        });
        for recv in &out {
            // From rank 0: one 0; rank 1: two 1s; rank 2: three 2s.
            assert_eq!(recv.as_slice(), &[0u8, 1, 1, 2, 2, 2]);
        }
    }

    #[test]
    fn sendrecv_ring_halo() {
        let p = 4;
        let out = Cluster::ideal(p).run_collect(|c| {
            let right = (c.rank() + 1) % p;
            let left = (c.rank() + p - 1) % p;
            // Send my id left; receive my right neighbor's id.
            c.sendrecv(left, &[c.rank() as u32], right)
        });
        for (rank, got) in out.iter().enumerate() {
            assert_eq!(got[0], ((rank + 1) % p) as u32);
        }
    }

    #[test]
    fn broadcast_gather_allreduce() {
        let p = 4;
        let out = Cluster::ideal(p).run_collect(|c| {
            let bc = if c.rank() == 2 {
                c.broadcast(2, vec![7.5f64, -1.0])
            } else {
                c.broadcast(2, Vec::new())
            };
            let gathered = c.gather(0, &[c.rank() as u32]);
            let sum = c.allreduce_sum(c.rank() as f64);
            let max = c.allreduce_max(c.rank() as f64);
            (bc, gathered, sum, max)
        });
        for (rank, (bc, gathered, sum, max)) in out.iter().enumerate() {
            assert_eq!(bc.as_slice(), &[7.5, -1.0]);
            assert_eq!(*sum, 6.0);
            assert_eq!(*max, 3.0);
            if rank == 0 {
                assert_eq!(gathered.as_deref(), Some(&[0u32, 1, 2, 3][..]));
            } else {
                assert!(gathered.is_none());
            }
        }
    }

    #[test]
    fn virtual_clock_synchronizes_at_collectives() {
        let p = 3;
        let reports: Vec<RankReport> = Cluster::new(p, Fabric::ethernet_10g())
            .run(|c| {
                // Rank r computes r seconds (virtually), then all barrier.
                c.charge_compute(c.rank() as f64);
                c.barrier();
            })
            .into_iter()
            .map(|(_, rep)| rep)
            .collect();
        // After the barrier everyone's clock ≥ the slowest rank's 2.0 s.
        for r in &reports {
            assert!(r.sim_time >= 2.0, "rank {} at {}", r.rank, r.sim_time);
            // Faster ranks billed the wait as comm time.
            let expected_wait = 2.0 - r.rank as f64;
            assert!(
                r.comm_time >= expected_wait,
                "rank {} comm {}",
                r.rank,
                r.comm_time
            );
        }
        assert!(Cluster::makespan(&reports) >= 2.0);
    }

    #[test]
    fn all_to_all_charges_fabric_time() {
        let p = 4;
        let reports: Vec<RankReport> = Cluster::new(p, Fabric::ethernet_10g())
            .run(|c| {
                let send = vec![0u8; 1 << 20]; // 1 MiB per rank
                let mut recv = vec![0u8; 1 << 20];
                c.all_to_all(&send, &mut recv);
            })
            .into_iter()
            .map(|(_, rep)| rep)
            .collect();
        // Off-rank traffic only: each rank keeps its 256 KiB self-block
        // local, so the fabric carries (1 MiB − 256 KiB) per rank.
        let off_rank = (1u64 << 20) - (1u64 << 18);
        let expect = Fabric::ethernet_10g().all_to_all_time(p, off_rank * p as u64);
        for r in &reports {
            assert!(
                (r.comm_time - expect).abs() < 1e-9,
                "rank {} comm {} vs {}",
                r.rank,
                r.comm_time,
                expect
            );
            assert_eq!(r.stats.all_to_alls, 1);
        }
    }

    #[test]
    fn even_all_to_allv_costs_exactly_what_all_to_all_costs() {
        // Regression for the self-block accounting mismatch: both
        // collectives must charge identical virtual time for identical
        // (even) payloads.
        let p = 4;
        let block = 1usize << 16;
        let cluster = Cluster::new(p, Fabric::ethernet_10g());
        let fixed: Vec<RankReport> = cluster
            .run(|c| {
                let send = vec![0u8; p * block];
                let mut recv = vec![0u8; p * block];
                c.all_to_all(&send, &mut recv);
            })
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        let varied: Vec<RankReport> = cluster
            .run(|c| {
                let send = vec![0u8; p * block];
                let counts = vec![block; p];
                let _ = c.all_to_allv(&send, &counts);
            })
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        for (a, b) in fixed.iter().zip(&varied) {
            assert!(
                (a.comm_time - b.comm_time).abs() < 1e-12,
                "rank {}: all_to_all {} vs all_to_allv {}",
                a.rank,
                a.comm_time,
                b.comm_time
            );
        }
    }

    #[test]
    fn traced_run_validates_and_reflects_traffic() {
        let p = 3;
        let (results, set) = Cluster::new(p, Fabric::ethernet_10g()).run_traced(|c| {
            let send: Vec<u64> = (0..p).map(|d| (c.rank() * 10 + d) as u64).collect();
            let mut recv = vec![0u64; p];
            c.all_to_all(&send, &mut recv);
            c.barrier();
            c.allreduce_sum(1.0)
        });
        assert_eq!(set.ranks.len(), p);
        let summary = set.validate().expect("trace must satisfy conservation");
        // all_to_all: p(p-1) messages; all_gather (allreduce): p(p-1).
        assert_eq!(summary.messages as usize, 2 * p * (p - 1));
        let total_sent: u64 = results.iter().map(|(_, r)| r.stats.bytes_sent).sum();
        let total_received: u64 = results.iter().map(|(_, r)| r.stats.bytes_received).sum();
        assert_eq!(total_sent, total_received);
        assert_eq!(summary.bytes, total_sent);
    }

    #[test]
    fn untraced_run_records_nothing() {
        let out = Cluster::ideal(2).run(|c| {
            assert!(!c.trace().is_enabled());
            c.barrier();
            c.rank()
        });
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn byte_accounting() {
        let p = 2;
        let reports: Vec<RankReport> = Cluster::ideal(p)
            .run(|c| {
                let send = vec![0u64; 8]; // 2 blocks of 4 u64 = 32 bytes to peer
                let mut recv = vec![0u64; 8];
                c.all_to_all(&send, &mut recv);
            })
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        for r in &reports {
            // Only the off-rank block counts as sent: 4 × 8 bytes.
            assert_eq!(r.stats.bytes_sent, 32);
        }
    }

    #[test]
    fn compute_timed_charges_wall_time() {
        let out = Cluster::ideal(1).run(|c| {
            c.compute_timed(|| {
                std::thread::sleep(std::time::Duration::from_millis(10));
            });
        });
        assert!(out[0].1.compute_time >= 0.009);
    }

    #[test]
    fn single_rank_cluster_works() {
        let out = Cluster::ideal(1).run_collect(|c| {
            let send = vec![1u8, 2, 3];
            let mut recv = vec![0u8; 3];
            c.all_to_all(&send, &mut recv);
            recv
        });
        assert_eq!(out[0], vec![1, 2, 3]);
    }

    #[test]
    fn failed_rank_surfaces_as_peer_lost_not_hang() {
        use crate::comm::SimCommError;
        let p = 4;
        let t0 = std::time::Instant::now();
        let out = Cluster::ideal(p).run_collect(|c| {
            if c.rank() == 2 {
                c.fail_now();
                return Err(SimCommError::PeerLost { peer: Some(2) });
            }
            let send: Vec<u64> = (0..p * 2).map(|i| i as u64).collect();
            let mut recv = vec![0u64; p * 2];
            c.try_all_to_all(&send, &mut recv)
        });
        for (rank, r) in out.iter().enumerate() {
            if rank == 2 {
                continue;
            }
            assert!(
                matches!(r, Err(SimCommError::PeerLost { .. })),
                "rank {rank} got {r:?}"
            );
        }
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(10),
            "death detection took {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn buffered_messages_outlive_their_sender() {
        use crate::comm::SimCommError;
        let out = Cluster::ideal(2).run_collect(|c| {
            if c.rank() == 0 {
                // Send, then die: the payload is already on the wire.
                c.try_send(1, vec![7u64, 8, 9]).unwrap();
                c.fail_now();
                Ok::<Vec<u64>, SimCommError>(Vec::new())
            } else {
                let got = c.try_recv::<u64>(0)?;
                // A second receive must now observe the death.
                match c.try_recv::<u64>(0) {
                    Err(SimCommError::PeerLost { .. }) => Ok(got),
                    other => panic!("expected PeerLost, got {other:?}"),
                }
            }
        });
        assert_eq!(out[1].as_deref(), Ok(&[7u64, 8, 9][..]));
    }

    #[test]
    #[should_panic]
    fn rank_panic_propagates() {
        Cluster::ideal(2).run_collect(|c| {
            if c.rank() == 1 {
                panic!("boom");
            }
            // Rank 0 returns without communicating, so nobody deadlocks.
            0u8
        });
    }
}
