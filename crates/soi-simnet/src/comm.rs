//! The per-rank communicator.
//!
//! Semantics mirror blocking MPI: every rank must call each collective in
//! the same order; point-to-point sends are buffered (never block) and
//! receives block until the matching message arrives. All payloads really
//! travel through channels — nothing is faked — while *time* is charged to
//! the rank's [`VirtualClock`] from the fabric model.
//!
//! Rank death is a first-class event, mirroring the wire transport: a
//! rank that calls [`RankComm::fail_now`] marks itself dead and breaks
//! the cluster barrier, and every `try_*` operation on a survivor then
//! surfaces [`SimCommError::PeerLost`] in bounded time instead of
//! blocking forever. The panicking methods (`recv`, `all_to_all`, …)
//! remain the ergonomic API for tests that never inject faults; they are
//! thin wrappers over the `try_*` variants.

use crate::clock::VirtualClock;
use crate::netmodel::Fabric;
use soi_trace::{CollectiveOp, Trace};
use std::any::Any;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

type Msg = Box<dyn Any + Send>;

/// How long a survivor polls an empty mailbox before giving up. Death is
/// normally observed through the dead flag within one poll interval; the
/// deadline is the backstop for a peer that is alive but wedged.
const RECV_DEADLINE: Duration = Duration::from_secs(30);

/// Poll interval while waiting on an empty mailbox or a barrier.
const POLL: Duration = Duration::from_micros(500);

/// What can go wrong on the simulated network. Mirrors the wire
/// transport's taxonomy so `soi-dist` can map both onto one `CommError`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimCommError {
    /// A peer rank died (or the cluster barrier was broken by a death).
    PeerLost {
        /// The dead peer, when a specific link observed the death.
        peer: Option<usize>,
    },
    /// An operation exceeded its deadline with every peer still alive.
    Timeout {
        /// Which operation timed out.
        op: &'static str,
    },
}

impl fmt::Display for SimCommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimCommError::PeerLost { peer: Some(p) } => write!(f, "peer rank {p} died"),
            SimCommError::PeerLost { peer: None } => write!(f, "a peer rank died"),
            SimCommError::Timeout { op } => write!(f, "simnet {op} timed out"),
        }
    }
}

impl std::error::Error for SimCommError {}

/// A reusable barrier that can be *failed*: once any participant calls
/// [`DeathBarrier::fail`], every current and future `wait` returns `Err`
/// immediately — the mesh stays broken until a new cluster is built,
/// exactly like a torn-down TCP mesh.
pub(crate) struct DeathBarrier {
    size: usize,
    state: Mutex<BarrierState>,
    cvar: Condvar,
}

struct BarrierState {
    count: usize,
    generation: u64,
    failed: bool,
}

impl DeathBarrier {
    pub(crate) fn new(size: usize) -> Self {
        Self {
            size,
            state: Mutex::new(BarrierState { count: 0, generation: 0, failed: false }),
            cvar: Condvar::new(),
        }
    }

    /// Block until all `size` ranks arrive, or until the barrier fails.
    pub(crate) fn wait(&self) -> Result<(), ()> {
        let mut st = self.state.lock().expect("barrier poisoned");
        if st.failed {
            return Err(());
        }
        let gen = st.generation;
        st.count += 1;
        if st.count == self.size {
            st.count = 0;
            st.generation += 1;
            self.cvar.notify_all();
            return Ok(());
        }
        while st.generation == gen && !st.failed {
            st = self.cvar.wait(st).expect("barrier poisoned");
        }
        if st.failed {
            Err(())
        } else {
            Ok(())
        }
    }

    /// Break the barrier permanently and wake every waiter.
    pub(crate) fn fail(&self) {
        let mut st = self.state.lock().expect("barrier poisoned");
        st.failed = true;
        self.cvar.notify_all();
    }
}

/// Shared coordination state for one cluster run.
pub(crate) struct Shared {
    pub(crate) size: usize,
    pub(crate) fabric: Fabric,
    pub(crate) barrier: DeathBarrier,
    /// One f64-as-bits slot per rank for clock agreement at collectives.
    pub(crate) clock_slots: Vec<AtomicU64>,
    /// `dead[r]` — rank `r` called `fail_now` and will never speak again.
    pub(crate) dead: Vec<AtomicBool>,
}

impl Shared {
    pub(crate) fn new(size: usize, fabric: Fabric) -> Self {
        Self {
            size,
            fabric,
            barrier: DeathBarrier::new(size),
            clock_slots: (0..size).map(|_| AtomicU64::new(0)).collect(),
            dead: (0..size).map(|_| AtomicBool::new(false)).collect(),
        }
    }
}

/// Per-rank traffic accounting, split by operation class.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CommStats {
    /// Payload bytes this rank pushed into the network.
    pub bytes_sent: u64,
    /// Payload bytes this rank pulled off the network. Cluster-wide,
    /// the sum over ranks must equal the sum of `bytes_sent` — the
    /// conservation law the trace validator checks per link.
    pub bytes_received: u64,
    /// Point-to-point messages sent.
    pub p2p_messages: u64,
    /// Number of all-to-all collectives participated in.
    pub all_to_alls: u64,
    /// Number of other collectives (broadcast/gather/reduce/barrier).
    pub other_collectives: u64,
}

/// A rank's endpoint into the simulated machine.
///
/// Channels are `std::sync::mpsc` (one dedicated sender/receiver pair per
/// ordered rank pair, so each link is effectively SPSC): sends are
/// buffered and never block, receives block until the matching message
/// arrives — blocking-MPI semantics, exactly what the single-all-to-all
/// SOI exchange (Eq. 6) and the triple-exchange baseline assume.
pub struct RankComm {
    rank: usize,
    shared: std::sync::Arc<Shared>,
    /// `senders[dst]` — channel into rank `dst`'s mailbox from us.
    senders: Vec<Sender<Msg>>,
    /// `receivers[src]` — our mailbox for messages from rank `src`.
    receivers: Vec<Receiver<Msg>>,
    clock: VirtualClock,
    stats: CommStats,
    trace: Trace,
}

impl RankComm {
    pub(crate) fn new(
        rank: usize,
        shared: std::sync::Arc<Shared>,
        senders: Vec<Sender<Msg>>,
        receivers: Vec<Receiver<Msg>>,
        trace: Trace,
    ) -> Self {
        Self {
            rank,
            shared,
            senders,
            receivers,
            clock: VirtualClock::new(),
            stats: CommStats::default(),
            trace,
        }
    }

    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.shared.size
    }

    /// The fabric this cluster was built with.
    pub fn fabric(&self) -> &Fabric {
        &self.shared.fabric
    }

    /// Virtual clock (read-only).
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// This rank's trace handle (disabled unless the cluster was run via
    /// [`crate::Cluster::run_traced`]). Clone it to instrument phases that
    /// interleave with `&mut self` communicator calls.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Charge `dt` seconds of local computation to this rank.
    pub fn charge_compute(&mut self, dt: f64) {
        self.clock.charge_compute(dt);
    }

    /// Run `f`, measure its wall time, charge it as compute, return its
    /// value. (On an unloaded machine wall ≈ CPU time; harnesses that need
    /// calibrated charging use [`RankComm::charge_compute`] directly.)
    pub fn compute_timed<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let t0 = std::time::Instant::now();
        let r = f();
        self.clock.charge_compute(t0.elapsed().as_secs_f64());
        r
    }

    /// Declare this rank dead: mark the flag every survivor polls and
    /// break the cluster barrier. Simulates a killed process — after
    /// this, every operation on every rank of this cluster fails, and
    /// the mesh stays broken until a fresh [`crate::Cluster`] run
    /// (the simnet analogue of re-wiring the TCP mesh on rejoin).
    pub fn fail_now(&mut self) {
        self.shared.dead[self.rank].store(true, Ordering::SeqCst);
        self.shared.barrier.fail();
    }

    /// Whether `rank` has declared itself dead.
    pub fn is_dead(&self, rank: usize) -> bool {
        self.shared.dead[rank].load(Ordering::SeqCst)
    }

    /// Push one message toward `dst`, failing fast on a dead peer.
    fn try_send_msg(&mut self, dst: usize, msg: Msg) -> Result<(), SimCommError> {
        if self.shared.dead[dst].load(Ordering::SeqCst) {
            return Err(SimCommError::PeerLost { peer: Some(dst) });
        }
        self.senders[dst]
            .send(msg)
            .map_err(|_| SimCommError::PeerLost { peer: Some(dst) })
    }

    /// Pull one message from `src`. Buffered messages are delivered even
    /// if `src` has since died (they were "on the wire"); an empty
    /// mailbox from a dead peer is a lost peer; an empty mailbox from a
    /// live peer is polled until [`RECV_DEADLINE`].
    fn try_recv_msg(&self, src: usize, op: &'static str) -> Result<Msg, SimCommError> {
        let deadline = Instant::now() + RECV_DEADLINE;
        loop {
            match self.receivers[src].try_recv() {
                Ok(m) => return Ok(m),
                Err(TryRecvError::Disconnected) => {
                    return Err(SimCommError::PeerLost { peer: Some(src) })
                }
                Err(TryRecvError::Empty) => {}
            }
            if self.shared.dead[src].load(Ordering::SeqCst) {
                // Final drain: a message queued before the death flag
                // became visible is still on the wire and deliverable.
                return match self.receivers[src].try_recv() {
                    Ok(m) => Ok(m),
                    Err(_) => Err(SimCommError::PeerLost { peer: Some(src) }),
                };
            }
            if Instant::now() >= deadline {
                return Err(SimCommError::Timeout { op });
            }
            match self.receivers[src].recv_timeout(POLL) {
                Ok(m) => return Ok(m),
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(SimCommError::PeerLost { peer: Some(src) })
                }
                Err(RecvTimeoutError::Timeout) => {}
            }
        }
    }

    /// Agree on `max(now)` across ranks, then charge `op_cost`. The
    /// double barrier protects the slots from the next collective.
    fn try_sync_clocks(&mut self, op_cost: f64) -> Result<(), SimCommError> {
        let slots = &self.shared.clock_slots;
        slots[self.rank].store(self.clock.now().to_bits(), Ordering::SeqCst);
        self.shared
            .barrier
            .wait()
            .map_err(|_| SimCommError::PeerLost { peer: None })?;
        // Seed with -inf, not 0.0: a 0.0 seed would silently clamp the
        // fold if clocks could ever read negative, turning "max of the
        // ranks' clocks" into "max of the clocks and zero".
        let max = slots
            .iter()
            .map(|s| f64::from_bits(s.load(Ordering::SeqCst)))
            .fold(f64::NEG_INFINITY, f64::max);
        self.shared
            .barrier
            .wait()
            .map_err(|_| SimCommError::PeerLost { peer: None })?;
        self.clock.synchronize(max, op_cost);
        Ok(())
    }

    /// Fallible barrier across all ranks.
    pub fn try_barrier(&mut self) -> Result<(), SimCommError> {
        let cost = self.shared.fabric.barrier_time(self.size());
        self.try_sync_clocks(cost)?;
        self.stats.other_collectives += 1;
        // Recorded after synchronization: every rank's barrier event must
        // carry the identical clock, which the trace validator asserts.
        self.trace
            .collective(CollectiveOp::Barrier, 0, Some(self.clock.now()));
        Ok(())
    }

    /// Barrier across all ranks.
    pub fn barrier(&mut self) {
        self.try_barrier().expect("peer rank hung up");
    }

    /// Fallible non-blocking buffered send of a typed payload to `dst`.
    ///
    /// Time is *not* charged here; paired operations ([`Self::sendrecv`])
    /// and collectives charge the fabric cost. Raw sends are the building
    /// block and charge at the matching `recv`.
    pub fn try_send<T: Send + 'static>(
        &mut self,
        dst: usize,
        data: Vec<T>,
    ) -> Result<(), SimCommError> {
        let bytes = (data.len() * std::mem::size_of::<T>()) as u64;
        self.stats.bytes_sent += bytes;
        self.stats.p2p_messages += 1;
        self.trace.send(dst, bytes, Some(self.clock.now()));
        self.try_send_msg(dst, Box::new(data))
    }

    /// Non-blocking buffered send of a typed payload to `dst`.
    pub fn send<T: Send + 'static>(&mut self, dst: usize, data: Vec<T>) {
        self.try_send(dst, data).expect("peer rank hung up");
    }

    /// Fallible blocking receive of a typed payload from `src`, charging
    /// the point-to-point fabric cost.
    pub fn try_recv<T: Send + 'static>(&mut self, src: usize) -> Result<Vec<T>, SimCommError> {
        let msg = self.try_recv_msg(src, "recv")?;
        let data = *msg
            .downcast::<Vec<T>>()
            .expect("type mismatch between send and recv");
        let bytes = (data.len() * std::mem::size_of::<T>()) as u64;
        self.stats.bytes_received += bytes;
        self.clock
            .charge_comm(self.shared.fabric.point_to_point_time(bytes));
        self.trace.recv(src, bytes, Some(self.clock.now()));
        Ok(data)
    }

    /// Blocking receive of a typed payload from `src`.
    pub fn recv<T: Send + 'static>(&mut self, src: usize) -> Vec<T> {
        self.try_recv(src).expect("peer rank hung up")
    }

    /// Fallible simultaneous exchange: send `data` to `dst` while
    /// receiving from `src` (the halo-exchange pattern of the SOI
    /// convolution, where each node needs `(B−ν)P` points from its
    /// next-door neighbor — §2: "each node merely needs an insignificant
    /// amount of data").
    pub fn try_sendrecv<T: Send + Clone + 'static>(
        &mut self,
        dst: usize,
        data: &[T],
        src: usize,
    ) -> Result<Vec<T>, SimCommError> {
        let sent_bytes = (data.len() * std::mem::size_of::<T>()) as u64;
        self.stats.bytes_sent += sent_bytes;
        self.stats.p2p_messages += 1;
        self.trace.send(dst, sent_bytes, Some(self.clock.now()));
        self.try_send_msg(dst, Box::new(data.to_vec()))?;
        let msg = self.try_recv_msg(src, "sendrecv")?;
        let out = *msg
            .downcast::<Vec<T>>()
            .expect("type mismatch between sendrecv peers");
        let bytes = (out.len() * std::mem::size_of::<T>()) as u64;
        self.stats.bytes_received += bytes;
        self.trace.recv(src, bytes, Some(self.clock.now()));
        // All ranks exchange concurrently; synchronize and charge one hop.
        self.try_sync_clocks(self.shared.fabric.point_to_point_time(bytes))?;
        self.trace
            .collective(CollectiveOp::SendRecv, bytes, Some(self.clock.now()));
        Ok(out)
    }

    /// Simultaneous exchange: send `data` to `dst` while receiving from `src`.
    pub fn sendrecv<T: Send + Clone + 'static>(
        &mut self,
        dst: usize,
        data: &[T],
        src: usize,
    ) -> Vec<T> {
        self.try_sendrecv(dst, data, src).expect("peer rank hung up")
    }

    /// Fallible all-to-all with equal blocks: block `d` of `send` goes to
    /// rank `d`; `recv` block `s` arrives from rank `s`. This is the
    /// single global exchange of the SOI factorization (`P_perm^{P,N'}`
    /// in Eq. 6) and the three exchanges of the baseline.
    pub fn try_all_to_all<T: Send + Clone + 'static>(
        &mut self,
        send: &[T],
        recv: &mut [T],
    ) -> Result<(), SimCommError> {
        let p = self.size();
        assert_eq!(send.len(), recv.len(), "all_to_all buffers must match");
        assert!(
            send.len() % p == 0,
            "all_to_all length {} not divisible by {p} ranks",
            send.len()
        );
        let block = send.len() / p;
        for dst in 0..p {
            if dst == self.rank {
                continue;
            }
            let chunk = send[dst * block..(dst + 1) * block].to_vec();
            let chunk_bytes = (chunk.len() * std::mem::size_of::<T>()) as u64;
            self.stats.bytes_sent += chunk_bytes;
            self.trace.send(dst, chunk_bytes, Some(self.clock.now()));
            self.try_send_msg(dst, Box::new(chunk))?;
        }
        recv[self.rank * block..(self.rank + 1) * block]
            .clone_from_slice(&send[self.rank * block..(self.rank + 1) * block]);
        for src in 0..p {
            if src == self.rank {
                continue;
            }
            let msg = self.try_recv_msg(src, "all_to_all")?;
            let data = *msg
                .downcast::<Vec<T>>()
                .expect("type mismatch in all_to_all");
            assert_eq!(data.len(), block, "ragged all_to_all block from {src}");
            let bytes = (data.len() * std::mem::size_of::<T>()) as u64;
            self.stats.bytes_received += bytes;
            self.trace.recv(src, bytes, Some(self.clock.now()));
            recv[src * block..(src + 1) * block].clone_from_slice(&data);
        }
        // Fabric-charged traffic excludes each rank's self-block (a local
        // memcpy never touches the wire) — the same convention
        // `all_to_allv` uses, so even payloads price identically on both.
        let total_bytes = ((send.len() - block) * std::mem::size_of::<T>()) as u64 * p as u64;
        let cost = self.shared.fabric.all_to_all_time(p, total_bytes);
        self.try_sync_clocks(cost)?;
        self.stats.all_to_alls += 1;
        self.trace
            .collective(CollectiveOp::AllToAll, total_bytes, Some(self.clock.now()));
        Ok(())
    }

    /// All-to-all with equal blocks.
    pub fn all_to_all<T: Send + Clone + 'static>(&mut self, send: &[T], recv: &mut [T]) {
        self.try_all_to_all(send, recv).expect("peer rank hung up");
    }

    /// Fallible segment-granular all-to-all with a per-landed-segment
    /// callback — the simulated twin of the wire transport's streamed
    /// exchange, with identical layouts and accounting.
    ///
    /// `send` holds `P` destination blocks of `nseg` sub-blocks each
    /// (sub-block `(d, s)` at `send[(d·nseg + s)·rows..]`); deliveries
    /// land segment-major (`recv[(s·P + src)·rows..]`), and `on_seg(s,
    /// segment, clock)` fires once per segment in ascending order with
    /// the rank's virtual clock. Sends are buffered up front (they never
    /// block on simnet), so "overlap" here is purely the delivery
    /// order — what matters is that both transports fire the callbacks
    /// on identical data in identical order, keeping the overlapped
    /// schedule bitwise reproducible across fabrics. Time is charged
    /// exactly like [`RankComm::try_all_to_all`]: one all-to-all of the
    /// aggregate non-self payload at the closing clock sync.
    pub fn try_all_to_all_seg<T: Send + Clone + 'static>(
        &mut self,
        send: &[T],
        recv: &mut [T],
        nseg: usize,
        on_seg: &mut dyn FnMut(usize, &mut [T], Option<f64>),
    ) -> Result<(), SimCommError> {
        let p = self.size();
        assert_eq!(send.len(), recv.len(), "all_to_all buffers must match");
        assert!(
            nseg > 0 && send.len() % (p * nseg) == 0,
            "all_to_all length {} not divisible by {p} ranks x {nseg} segments",
            send.len()
        );
        let rows = send.len() / (p * nseg);
        let sub_bytes = (rows * std::mem::size_of::<T>()) as u64;
        // Same (segment, round)-major global order as the wire writer
        // thread, so per-link FIFO delivery matches across transports.
        for si in 0..nseg {
            for r in 1..p {
                let dst = (self.rank + r) % p;
                let chunk = send[(dst * nseg + si) * rows..][..rows].to_vec();
                self.stats.bytes_sent += sub_bytes;
                self.trace.send(dst, sub_bytes, Some(self.clock.now()));
                self.try_send_msg(dst, Box::new(chunk))?;
            }
        }
        for si in 0..nseg {
            for r in 1..p {
                let src = (self.rank + p - r) % p;
                let msg = self.try_recv_msg(src, "all_to_all")?;
                let data = *msg
                    .downcast::<Vec<T>>()
                    .expect("type mismatch in all_to_all");
                assert_eq!(data.len(), rows, "ragged all_to_all sub-block from {src}");
                self.stats.bytes_received += sub_bytes;
                self.trace.recv(src, sub_bytes, Some(self.clock.now()));
                recv[(si * p + src) * rows..][..rows].clone_from_slice(&data);
            }
            recv[(si * p + self.rank) * rows..][..rows]
                .clone_from_slice(&send[(self.rank * nseg + si) * rows..][..rows]);
            on_seg(si, &mut recv[si * p * rows..][..p * rows], Some(self.clock.now()));
        }
        // Fabric-charged traffic excludes each rank's self-block — the
        // identical convention (and total) as the unsegmented collective.
        let total_bytes = (p - 1) as u64 * nseg as u64 * sub_bytes * p as u64;
        let cost = self.shared.fabric.all_to_all_time(p, total_bytes);
        self.try_sync_clocks(cost)?;
        self.stats.all_to_alls += 1;
        self.trace
            .collective(CollectiveOp::AllToAll, total_bytes, Some(self.clock.now()));
        Ok(())
    }

    /// Fallible variable-count all-to-all: `send` is partitioned by
    /// `send_counts` (one entry per destination); returns the
    /// concatenation of the blocks received from ranks `0..p` in order.
    /// A zero count is legal and still records a zero-byte send/recv
    /// event pair (the wire transport ships the matching zero-length
    /// frame — the schedules must stay in lock-step).
    pub fn try_all_to_allv<T: Send + Clone + 'static>(
        &mut self,
        send: &[T],
        send_counts: &[usize],
    ) -> Result<Vec<T>, SimCommError> {
        let p = self.size();
        assert_eq!(send_counts.len(), p, "need one send count per rank");
        assert_eq!(
            send_counts.iter().sum::<usize>(),
            send.len(),
            "send counts must cover the buffer"
        );
        let mut offset = 0;
        let mut self_block: Vec<T> = Vec::new();
        for (dst, &cnt) in send_counts.iter().enumerate() {
            let chunk = &send[offset..offset + cnt];
            offset += cnt;
            if dst == self.rank {
                self_block = chunk.to_vec();
            } else {
                let bytes = (cnt * std::mem::size_of::<T>()) as u64;
                self.stats.bytes_sent += bytes;
                self.trace.send(dst, bytes, Some(self.clock.now()));
                self.try_send_msg(dst, Box::new(chunk.to_vec()))?;
            }
        }
        let mut out = Vec::new();
        let mut total_recv_bytes = 0u64;
        for src in 0..p {
            if src == self.rank {
                out.extend_from_slice(&self_block);
                continue;
            }
            let msg = self.try_recv_msg(src, "all_to_allv")?;
            let data = *msg
                .downcast::<Vec<T>>()
                .expect("type mismatch in all_to_allv");
            let bytes = (data.len() * std::mem::size_of::<T>()) as u64;
            total_recv_bytes += bytes;
            self.stats.bytes_received += bytes;
            self.trace.recv(src, bytes, Some(self.clock.now()));
            out.extend_from_slice(&data);
        }
        // Cost model: approximate the exchange as an even all-to-all of
        // the aggregate payload, estimated from this rank's received bytes
        // (exact per-link modeling is unnecessary at the granularity of
        // the paper's model, and the SOI/baseline payloads are balanced).
        let charged = total_recv_bytes * p as u64;
        let cost = self.shared.fabric.all_to_all_time(p, charged);
        self.try_sync_clocks(cost)?;
        self.stats.all_to_alls += 1;
        self.trace
            .collective(CollectiveOp::AllToAllV, charged, Some(self.clock.now()));
        Ok(out)
    }

    /// Variable-count all-to-all.
    pub fn all_to_allv<T: Send + Clone + 'static>(
        &mut self,
        send: &[T],
        send_counts: &[usize],
    ) -> Vec<T> {
        self.try_all_to_allv(send, send_counts).expect("peer rank hung up")
    }

    /// Fallible broadcast of `data` from `root` to every rank.
    pub fn try_broadcast<T: Send + Clone + 'static>(
        &mut self,
        root: usize,
        data: Vec<T>,
    ) -> Result<Vec<T>, SimCommError> {
        let p = self.size();
        let out = if self.rank == root {
            let bytes = (data.len() * std::mem::size_of::<T>()) as u64;
            for dst in 0..p {
                if dst != root {
                    self.stats.bytes_sent += bytes;
                    self.trace.send(dst, bytes, Some(self.clock.now()));
                    self.try_send_msg(dst, Box::new(data.clone()))?;
                }
            }
            data
        } else {
            let msg = self.try_recv_msg(root, "broadcast")?;
            let out = *msg.downcast::<Vec<T>>().expect("type mismatch in broadcast");
            let bytes = (out.len() * std::mem::size_of::<T>()) as u64;
            self.stats.bytes_received += bytes;
            self.trace.recv(root, bytes, Some(self.clock.now()));
            out
        };
        let bytes = (out.len() * std::mem::size_of::<T>()) as u64;
        let cost =
            self.shared.fabric.point_to_point_time(bytes) * (p as f64).log2().ceil().max(1.0);
        self.try_sync_clocks(cost)?;
        self.stats.other_collectives += 1;
        self.trace
            .collective(CollectiveOp::Broadcast, bytes, Some(self.clock.now()));
        Ok(out)
    }

    /// Broadcast `data` from `root` to every rank.
    pub fn broadcast<T: Send + Clone + 'static>(&mut self, root: usize, data: Vec<T>) -> Vec<T> {
        self.try_broadcast(root, data).expect("peer rank hung up")
    }

    /// Fallible gather of every rank's `data` at `root` (concatenated in
    /// rank order); other ranks get `None`.
    pub fn try_gather<T: Send + Clone + 'static>(
        &mut self,
        root: usize,
        data: &[T],
    ) -> Result<Option<Vec<T>>, SimCommError> {
        let p = self.size();
        let result = if self.rank == root {
            let mut out = Vec::new();
            for src in 0..p {
                if src == root {
                    out.extend_from_slice(data);
                } else {
                    let msg = self.try_recv_msg(src, "gather")?;
                    let block = *msg.downcast::<Vec<T>>().expect("type mismatch in gather");
                    let bytes = (block.len() * std::mem::size_of::<T>()) as u64;
                    self.stats.bytes_received += bytes;
                    self.trace.recv(src, bytes, Some(self.clock.now()));
                    out.extend_from_slice(&block);
                }
            }
            Some(out)
        } else {
            let bytes = (data.len() * std::mem::size_of::<T>()) as u64;
            self.stats.bytes_sent += bytes;
            self.trace.send(root, bytes, Some(self.clock.now()));
            self.try_send_msg(root, Box::new(data.to_vec()))?;
            None
        };
        let bytes = (data.len() * std::mem::size_of::<T>()) as u64;
        let cost = self.shared.fabric.point_to_point_time(bytes) * (p as f64).log2().ceil().max(1.0);
        self.try_sync_clocks(cost)?;
        self.stats.other_collectives += 1;
        self.trace
            .collective(CollectiveOp::Gather, bytes, Some(self.clock.now()));
        Ok(result)
    }

    /// Gather every rank's `data` at `root`; other ranks get `None`.
    pub fn gather<T: Send + Clone + 'static>(&mut self, root: usize, data: &[T]) -> Option<Vec<T>> {
        self.try_gather(root, data).expect("peer rank hung up")
    }

    /// Fallible all-gather: every rank receives the rank-ordered
    /// concatenation.
    pub fn try_all_gather<T: Send + Clone + 'static>(
        &mut self,
        data: &[T],
    ) -> Result<Vec<T>, SimCommError> {
        let p = self.size();
        for dst in 0..p {
            if dst != self.rank {
                let bytes = (data.len() * std::mem::size_of::<T>()) as u64;
                self.stats.bytes_sent += bytes;
                self.trace.send(dst, bytes, Some(self.clock.now()));
                self.try_send_msg(dst, Box::new(data.to_vec()))?;
            }
        }
        let mut out = Vec::new();
        for src in 0..p {
            if src == self.rank {
                out.extend_from_slice(data);
            } else {
                let msg = self.try_recv_msg(src, "all_gather")?;
                let block = *msg
                    .downcast::<Vec<T>>()
                    .expect("type mismatch in all_gather");
                let bytes = (block.len() * std::mem::size_of::<T>()) as u64;
                self.stats.bytes_received += bytes;
                self.trace.recv(src, bytes, Some(self.clock.now()));
                out.extend_from_slice(&block);
            }
        }
        let bytes = (data.len() * std::mem::size_of::<T>()) as u64 * p as u64;
        let cost = self.shared.fabric.all_to_all_time(p, bytes);
        self.try_sync_clocks(cost)?;
        self.stats.other_collectives += 1;
        self.trace
            .collective(CollectiveOp::AllGather, bytes, Some(self.clock.now()));
        Ok(out)
    }

    /// All-gather: every rank receives the rank-ordered concatenation.
    pub fn all_gather<T: Send + Clone + 'static>(&mut self, data: &[T]) -> Vec<T> {
        self.try_all_gather(data).expect("peer rank hung up")
    }

    /// Fallible sum-allreduce of one f64.
    pub fn try_allreduce_sum(&mut self, v: f64) -> Result<f64, SimCommError> {
        Ok(self.try_all_gather(&[v])?.iter().sum())
    }

    /// Sum-allreduce of one f64.
    pub fn allreduce_sum(&mut self, v: f64) -> f64 {
        self.try_allreduce_sum(v).expect("peer rank hung up")
    }

    /// Fallible max-allreduce of one f64. Seeded with `-inf`, not
    /// `f64::MIN`: a finite seed would silently become the answer when
    /// every rank contributes `-inf` — the same bug class
    /// [`Self::try_sync_clocks`] guards against, and the wire transport
    /// folds identically so the transports agree bitwise.
    pub fn try_allreduce_max(&mut self, v: f64) -> Result<f64, SimCommError> {
        Ok(self
            .try_all_gather(&[v])?
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max))
    }

    /// Max-allreduce of one f64.
    pub fn allreduce_max(&mut self, v: f64) -> f64 {
        self.try_allreduce_max(v).expect("peer rank hung up")
    }
}

#[cfg(test)]
mod tests {
    // RankComm cannot exist without a Cluster; its behaviour (including
    // fault injection via `fail_now`) is tested in `cluster.rs` where
    // ranks actually run.
}
