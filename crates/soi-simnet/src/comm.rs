//! The per-rank communicator.
//!
//! Semantics mirror blocking MPI: every rank must call each collective in
//! the same order; point-to-point sends are buffered (never block) and
//! receives block until the matching message arrives. All payloads really
//! travel through channels — nothing is faked — while *time* is charged to
//! the rank's [`VirtualClock`] from the fabric model.

use crate::clock::VirtualClock;
use crate::netmodel::Fabric;
use soi_trace::{CollectiveOp, Trace};
use std::any::Any;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

type Msg = Box<dyn Any + Send>;

/// Shared coordination state for one cluster run.
pub(crate) struct Shared {
    pub(crate) size: usize,
    pub(crate) fabric: Fabric,
    pub(crate) barrier: Barrier,
    /// One f64-as-bits slot per rank for clock agreement at collectives.
    pub(crate) clock_slots: Vec<AtomicU64>,
}

impl Shared {
    pub(crate) fn new(size: usize, fabric: Fabric) -> Self {
        Self {
            size,
            fabric,
            barrier: Barrier::new(size),
            clock_slots: (0..size).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// Per-rank traffic accounting, split by operation class.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CommStats {
    /// Payload bytes this rank pushed into the network.
    pub bytes_sent: u64,
    /// Payload bytes this rank pulled off the network. Cluster-wide,
    /// the sum over ranks must equal the sum of `bytes_sent` — the
    /// conservation law the trace validator checks per link.
    pub bytes_received: u64,
    /// Point-to-point messages sent.
    pub p2p_messages: u64,
    /// Number of all-to-all collectives participated in.
    pub all_to_alls: u64,
    /// Number of other collectives (broadcast/gather/reduce/barrier).
    pub other_collectives: u64,
}

/// A rank's endpoint into the simulated machine.
///
/// Channels are `std::sync::mpsc` (one dedicated sender/receiver pair per
/// ordered rank pair, so each link is effectively SPSC): sends are
/// buffered and never block, receives block until the matching message
/// arrives — blocking-MPI semantics, exactly what the single-all-to-all
/// SOI exchange (Eq. 6) and the triple-exchange baseline assume.
pub struct RankComm {
    rank: usize,
    shared: std::sync::Arc<Shared>,
    /// `senders[dst]` — channel into rank `dst`'s mailbox from us.
    senders: Vec<Sender<Msg>>,
    /// `receivers[src]` — our mailbox for messages from rank `src`.
    receivers: Vec<Receiver<Msg>>,
    clock: VirtualClock,
    stats: CommStats,
    trace: Trace,
}

impl RankComm {
    pub(crate) fn new(
        rank: usize,
        shared: std::sync::Arc<Shared>,
        senders: Vec<Sender<Msg>>,
        receivers: Vec<Receiver<Msg>>,
        trace: Trace,
    ) -> Self {
        Self {
            rank,
            shared,
            senders,
            receivers,
            clock: VirtualClock::new(),
            stats: CommStats::default(),
            trace,
        }
    }

    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.shared.size
    }

    /// The fabric this cluster was built with.
    pub fn fabric(&self) -> &Fabric {
        &self.shared.fabric
    }

    /// Virtual clock (read-only).
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// This rank's trace handle (disabled unless the cluster was run via
    /// [`crate::Cluster::run_traced`]). Clone it to instrument phases that
    /// interleave with `&mut self` communicator calls.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Charge `dt` seconds of local computation to this rank.
    pub fn charge_compute(&mut self, dt: f64) {
        self.clock.charge_compute(dt);
    }

    /// Run `f`, measure its wall time, charge it as compute, return its
    /// value. (On an unloaded machine wall ≈ CPU time; harnesses that need
    /// calibrated charging use [`RankComm::charge_compute`] directly.)
    pub fn compute_timed<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let t0 = std::time::Instant::now();
        let r = f();
        self.clock.charge_compute(t0.elapsed().as_secs_f64());
        r
    }

    /// Agree on `max(now)` across ranks, then charge `op_cost`. The
    /// double barrier protects the slots from the next collective.
    fn sync_clocks(&mut self, op_cost: f64) {
        let slots = &self.shared.clock_slots;
        slots[self.rank].store(self.clock.now().to_bits(), Ordering::SeqCst);
        self.shared.barrier.wait();
        // Seed with -inf, not 0.0: a 0.0 seed would silently clamp the
        // fold if clocks could ever read negative, turning "max of the
        // ranks' clocks" into "max of the clocks and zero".
        let max = slots
            .iter()
            .map(|s| f64::from_bits(s.load(Ordering::SeqCst)))
            .fold(f64::NEG_INFINITY, f64::max);
        self.shared.barrier.wait();
        self.clock.synchronize(max, op_cost);
    }

    /// Barrier across all ranks.
    pub fn barrier(&mut self) {
        let cost = self.shared.fabric.barrier_time(self.size());
        self.sync_clocks(cost);
        self.stats.other_collectives += 1;
        // Recorded after synchronization: every rank's barrier event must
        // carry the identical clock, which the trace validator asserts.
        self.trace
            .collective(CollectiveOp::Barrier, 0, Some(self.clock.now()));
    }

    /// Non-blocking buffered send of a typed payload to `dst`.
    ///
    /// Time is *not* charged here; paired operations ([`Self::sendrecv`])
    /// and collectives charge the fabric cost. Raw sends are the building
    /// block and charge at the matching `recv`.
    pub fn send<T: Send + 'static>(&mut self, dst: usize, data: Vec<T>) {
        let bytes = (data.len() * std::mem::size_of::<T>()) as u64;
        self.stats.bytes_sent += bytes;
        self.stats.p2p_messages += 1;
        self.trace.send(dst, bytes, Some(self.clock.now()));
        self.senders[dst]
            .send(Box::new(data))
            .expect("peer rank hung up");
    }

    /// Blocking receive of a typed payload from `src`, charging the
    /// point-to-point fabric cost.
    pub fn recv<T: Send + 'static>(&mut self, src: usize) -> Vec<T> {
        let msg = self.receivers[src].recv().expect("peer rank hung up");
        let data = *msg
            .downcast::<Vec<T>>()
            .expect("type mismatch between send and recv");
        let bytes = (data.len() * std::mem::size_of::<T>()) as u64;
        self.stats.bytes_received += bytes;
        self.clock
            .charge_comm(self.shared.fabric.point_to_point_time(bytes));
        self.trace.recv(src, bytes, Some(self.clock.now()));
        data
    }

    /// Simultaneous exchange: send `data` to `dst` while receiving from
    /// `src` (the halo-exchange pattern of the SOI convolution, where each
    /// node needs `(B−ν)P` points from its next-door neighbor — §2: "each
    /// node merely needs an insignificant amount of data").
    pub fn sendrecv<T: Send + Clone + 'static>(
        &mut self,
        dst: usize,
        data: &[T],
        src: usize,
    ) -> Vec<T> {
        let sent_bytes = (data.len() * std::mem::size_of::<T>()) as u64;
        self.stats.bytes_sent += sent_bytes;
        self.stats.p2p_messages += 1;
        self.trace.send(dst, sent_bytes, Some(self.clock.now()));
        self.senders[dst]
            .send(Box::new(data.to_vec()))
            .expect("peer rank hung up");
        let msg = self.receivers[src].recv().expect("peer rank hung up");
        let out = *msg
            .downcast::<Vec<T>>()
            .expect("type mismatch between sendrecv peers");
        let bytes = (out.len() * std::mem::size_of::<T>()) as u64;
        self.stats.bytes_received += bytes;
        self.trace.recv(src, bytes, Some(self.clock.now()));
        // All ranks exchange concurrently; synchronize and charge one hop.
        self.sync_clocks(self.shared.fabric.point_to_point_time(bytes));
        self.trace
            .collective(CollectiveOp::SendRecv, bytes, Some(self.clock.now()));
        out
    }

    /// All-to-all with equal blocks: block `d` of `send` goes to rank `d`;
    /// `recv` block `s` arrives from rank `s`. This is the single global
    /// exchange of the SOI factorization (`P_perm^{P,N'}` in Eq. 6) and
    /// the three exchanges of the baseline.
    pub fn all_to_all<T: Send + Clone + 'static>(&mut self, send: &[T], recv: &mut [T]) {
        let p = self.size();
        assert_eq!(send.len(), recv.len(), "all_to_all buffers must match");
        assert!(
            send.len() % p == 0,
            "all_to_all length {} not divisible by {p} ranks",
            send.len()
        );
        let block = send.len() / p;
        for dst in 0..p {
            if dst == self.rank {
                continue;
            }
            let chunk = send[dst * block..(dst + 1) * block].to_vec();
            let chunk_bytes = (chunk.len() * std::mem::size_of::<T>()) as u64;
            self.stats.bytes_sent += chunk_bytes;
            self.trace.send(dst, chunk_bytes, Some(self.clock.now()));
            self.senders[dst]
                .send(Box::new(chunk))
                .expect("peer rank hung up");
        }
        recv[self.rank * block..(self.rank + 1) * block]
            .clone_from_slice(&send[self.rank * block..(self.rank + 1) * block]);
        for src in 0..p {
            if src == self.rank {
                continue;
            }
            let msg = self.receivers[src].recv().expect("peer rank hung up");
            let data = *msg
                .downcast::<Vec<T>>()
                .expect("type mismatch in all_to_all");
            assert_eq!(data.len(), block, "ragged all_to_all block from {src}");
            let bytes = (data.len() * std::mem::size_of::<T>()) as u64;
            self.stats.bytes_received += bytes;
            self.trace.recv(src, bytes, Some(self.clock.now()));
            recv[src * block..(src + 1) * block].clone_from_slice(&data);
        }
        // Fabric-charged traffic excludes each rank's self-block (a local
        // memcpy never touches the wire) — the same convention
        // `all_to_allv` uses, so even payloads price identically on both.
        let total_bytes = ((send.len() - block) * std::mem::size_of::<T>()) as u64 * p as u64;
        let cost = self.shared.fabric.all_to_all_time(p, total_bytes);
        self.sync_clocks(cost);
        self.stats.all_to_alls += 1;
        self.trace
            .collective(CollectiveOp::AllToAll, total_bytes, Some(self.clock.now()));
    }

    /// Variable-count all-to-all: `send` is partitioned by `send_counts`
    /// (one entry per destination); returns the concatenation of the
    /// blocks received from ranks `0..p` in order.
    pub fn all_to_allv<T: Send + Clone + 'static>(
        &mut self,
        send: &[T],
        send_counts: &[usize],
    ) -> Vec<T> {
        let p = self.size();
        assert_eq!(send_counts.len(), p, "need one send count per rank");
        assert_eq!(
            send_counts.iter().sum::<usize>(),
            send.len(),
            "send counts must cover the buffer"
        );
        let mut offset = 0;
        let mut self_block: Vec<T> = Vec::new();
        for (dst, &cnt) in send_counts.iter().enumerate() {
            let chunk = &send[offset..offset + cnt];
            offset += cnt;
            if dst == self.rank {
                self_block = chunk.to_vec();
            } else {
                let bytes = (cnt * std::mem::size_of::<T>()) as u64;
                self.stats.bytes_sent += bytes;
                self.trace.send(dst, bytes, Some(self.clock.now()));
                self.senders[dst]
                    .send(Box::new(chunk.to_vec()))
                    .expect("peer rank hung up");
            }
        }
        let mut out = Vec::new();
        let mut total_recv_bytes = 0u64;
        for src in 0..p {
            if src == self.rank {
                out.extend_from_slice(&self_block);
                continue;
            }
            let msg = self.receivers[src].recv().expect("peer rank hung up");
            let data = *msg
                .downcast::<Vec<T>>()
                .expect("type mismatch in all_to_allv");
            let bytes = (data.len() * std::mem::size_of::<T>()) as u64;
            total_recv_bytes += bytes;
            self.stats.bytes_received += bytes;
            self.trace.recv(src, bytes, Some(self.clock.now()));
            out.extend_from_slice(&data);
        }
        // Cost model: approximate the exchange as an even all-to-all of
        // the aggregate payload, estimated from this rank's received bytes
        // (exact per-link modeling is unnecessary at the granularity of
        // the paper's model, and the SOI/baseline payloads are balanced).
        let charged = total_recv_bytes * p as u64;
        let cost = self.shared.fabric.all_to_all_time(p, charged);
        self.sync_clocks(cost);
        self.stats.all_to_alls += 1;
        self.trace
            .collective(CollectiveOp::AllToAllV, charged, Some(self.clock.now()));
        out
    }

    /// Broadcast `data` from `root` to every rank.
    pub fn broadcast<T: Send + Clone + 'static>(&mut self, root: usize, data: Vec<T>) -> Vec<T> {
        let p = self.size();
        let out = if self.rank == root {
            let bytes = (data.len() * std::mem::size_of::<T>()) as u64;
            for dst in 0..p {
                if dst != root {
                    self.stats.bytes_sent += bytes;
                    self.trace.send(dst, bytes, Some(self.clock.now()));
                    self.senders[dst]
                        .send(Box::new(data.clone()))
                        .expect("peer rank hung up");
                }
            }
            data
        } else {
            let msg = self.receivers[root].recv().expect("peer rank hung up");
            let out = *msg.downcast::<Vec<T>>().expect("type mismatch in broadcast");
            let bytes = (out.len() * std::mem::size_of::<T>()) as u64;
            self.stats.bytes_received += bytes;
            self.trace.recv(root, bytes, Some(self.clock.now()));
            out
        };
        let bytes = (out.len() * std::mem::size_of::<T>()) as u64;
        let cost =
            self.shared.fabric.point_to_point_time(bytes) * (p as f64).log2().ceil().max(1.0);
        self.sync_clocks(cost);
        self.stats.other_collectives += 1;
        self.trace
            .collective(CollectiveOp::Broadcast, bytes, Some(self.clock.now()));
        out
    }

    /// Gather every rank's `data` at `root` (concatenated in rank order);
    /// other ranks get `None`.
    pub fn gather<T: Send + Clone + 'static>(&mut self, root: usize, data: &[T]) -> Option<Vec<T>> {
        let p = self.size();
        let result = if self.rank == root {
            let mut out = Vec::new();
            for src in 0..p {
                if src == root {
                    out.extend_from_slice(data);
                } else {
                    let msg = self.receivers[src].recv().expect("peer rank hung up");
                    let block = *msg.downcast::<Vec<T>>().expect("type mismatch in gather");
                    let bytes = (block.len() * std::mem::size_of::<T>()) as u64;
                    self.stats.bytes_received += bytes;
                    self.trace.recv(src, bytes, Some(self.clock.now()));
                    out.extend_from_slice(&block);
                }
            }
            Some(out)
        } else {
            let bytes = (data.len() * std::mem::size_of::<T>()) as u64;
            self.stats.bytes_sent += bytes;
            self.trace.send(root, bytes, Some(self.clock.now()));
            self.senders[root]
                .send(Box::new(data.to_vec()))
                .expect("peer rank hung up");
            None
        };
        let bytes = (data.len() * std::mem::size_of::<T>()) as u64;
        let cost = self.shared.fabric.point_to_point_time(bytes) * (p as f64).log2().ceil().max(1.0);
        self.sync_clocks(cost);
        self.stats.other_collectives += 1;
        self.trace
            .collective(CollectiveOp::Gather, bytes, Some(self.clock.now()));
        result
    }

    /// All-gather: every rank receives the rank-ordered concatenation.
    pub fn all_gather<T: Send + Clone + 'static>(&mut self, data: &[T]) -> Vec<T> {
        let p = self.size();
        for dst in 0..p {
            if dst != self.rank {
                let bytes = (data.len() * std::mem::size_of::<T>()) as u64;
                self.stats.bytes_sent += bytes;
                self.trace.send(dst, bytes, Some(self.clock.now()));
                self.senders[dst]
                    .send(Box::new(data.to_vec()))
                    .expect("peer rank hung up");
            }
        }
        let mut out = Vec::new();
        for src in 0..p {
            if src == self.rank {
                out.extend_from_slice(data);
            } else {
                let msg = self.receivers[src].recv().expect("peer rank hung up");
                let block = *msg
                    .downcast::<Vec<T>>()
                    .expect("type mismatch in all_gather");
                let bytes = (block.len() * std::mem::size_of::<T>()) as u64;
                self.stats.bytes_received += bytes;
                self.trace.recv(src, bytes, Some(self.clock.now()));
                out.extend_from_slice(&block);
            }
        }
        let bytes = (data.len() * std::mem::size_of::<T>()) as u64 * p as u64;
        let cost = self.shared.fabric.all_to_all_time(p, bytes);
        self.sync_clocks(cost);
        self.stats.other_collectives += 1;
        self.trace
            .collective(CollectiveOp::AllGather, bytes, Some(self.clock.now()));
        out
    }

    /// Sum-allreduce of one f64.
    pub fn allreduce_sum(&mut self, v: f64) -> f64 {
        self.all_gather(&[v]).iter().sum()
    }

    /// Max-allreduce of one f64.
    pub fn allreduce_max(&mut self, v: f64) -> f64 {
        self.all_gather(&[v]).iter().copied().fold(f64::MIN, f64::max)
    }
}

#[cfg(test)]
mod tests {
    // RankComm cannot exist without a Cluster; its behaviour is tested in
    // `cluster.rs` where ranks actually run.
}
