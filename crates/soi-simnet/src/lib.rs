//! A simulated distributed-memory machine.
//!
//! The paper evaluates on 32–64-node InfiniBand clusters; this crate is the
//! substitute substrate (DESIGN.md §2): every MPI rank becomes an OS thread
//! with a private address space, and every collective really moves the
//! bytes through channels — so the *algorithmic* communication structure
//! (what is sent where, and how many global exchanges happen) is executed
//! and testable, not merely modeled.
//!
//! Time, however, is virtual. Each rank carries a clock
//! ([`clock::VirtualClock`]); compute is charged explicitly by the
//! algorithms (from wall measurements or a calibrated cost book), and each
//! collective charges wire time from a [`netmodel::Fabric`] — the same
//! per-node-link / bisection-bandwidth model the paper itself uses in §7.4
//! to analyze and project performance (footnote 7: torus bisection
//! bandwidth `4n/k`).
//!
//! * [`cluster`] — spawn `P` ranks, run a closure per rank, gather results
//!   and per-rank reports.
//! * [`comm`] — the per-rank communicator: point-to-point, halo exchange,
//!   all-to-all(v), broadcast, gather, allreduce, barrier; byte/message
//!   accounting per operation class.
//! * [`netmodel`] — fabric performance models: two-level fat tree
//!   (Endeavor), k-ary 3-D torus with concentration 16 (Gordon), 10 GbE,
//!   and an ideal zero-time fabric for pure correctness runs.
//! * [`systems`] — the Table 1 machine presets.

pub mod clock;
pub mod cluster;
pub mod comm;
pub mod netmodel;
pub mod systems;

pub use cluster::{Cluster, RankReport};
pub use comm::{CommStats, RankComm, SimCommError};
pub use netmodel::Fabric;
pub use systems::SystemConfig;
