//! Fabric performance models (§7.4 of the paper).
//!
//! The paper models MPI all-to-all time as the larger of two bounds:
//!
//! * **node-link bound** — each node must push its share of the payload
//!   through its own injection link;
//! * **bisection bound** — half the total payload must cross the network
//!   bisection: `T = (total/2) / B_bisect` (footnote 7), with a k-ary 3-D
//!   torus bisection of `4k²` switch-to-switch channels.
//!
//! Gordon's channels: node→switch one 4× QDR InfiniBand link (40 Gbit/s),
//! switch→switch three such links (120 Gbit/s); concentration 16 nodes per
//! switch. Endeavor's two-level 14-ary fat tree "offers an aggregated peak
//! bandwidth that scales linearly up to 32 nodes".
//!
//! Two refinements over the paper's idealized §7.4 model (both documented
//! in DESIGN.md):
//!
//! * an `efficiency` factor — the achieved fraction of peak link bandwidth
//!   in a real MPI all-to-all. Calibrated so the communication fraction of
//!   a triple-all-to-all FFT lands in the 50–90% range the paper reports
//!   (§1): ≈0.22 for InfiniBand collectives at scale, ≈0.08 for TCP over
//!   10 GbE (incast congestion collapse) — the latter reproduces Fig 8's
//!   near-asymptotic 3/(1+β) speedups.
//! * a *partition-aware* torus bisection: a job of `n` nodes occupies
//!   `⌈n/16⌉` switches; the cross-section of that compact block
//!   (`2·s^(2/3)` global channels) is what its all-to-all squeezes
//!   through. This reproduces Fig 6's observation that Gordon falls
//!   behind Endeavor "from 32 nodes onwards". The footnote's full-machine
//!   `4k²` formula is used by the Fig 9 projection harness directly.

/// Gigabit (decimal) per second → bytes per second.
const GBIT: f64 = 1e9 / 8.0;

/// An interconnect fabric with an analytic cost model.
#[derive(Debug, Clone, PartialEq)]
pub enum Fabric {
    /// Two-level fat tree (Endeavor): full per-node bandwidth up to
    /// `scalable_nodes`, then aggregate bandwidth grows only as `n^(2/3)`
    /// (the paper's Jaguar footnote 2).
    FatTree {
        /// Injection (node) link bandwidth in Gbit/s.
        link_gbps: f64,
        /// Node count up to which aggregate bandwidth scales linearly.
        scalable_nodes: usize,
        /// Per-message latency in seconds.
        latency_s: f64,
        /// Achieved fraction of peak bandwidth in an MPI all-to-all.
        efficiency: f64,
    },
    /// k-ary 3-D torus with a concentration factor (Gordon: 4-ary, 16
    /// nodes per switch), partition-aware.
    Torus3D {
        /// Nodes attached to each switch.
        concentration: usize,
        /// Node→switch link bandwidth in Gbit/s.
        local_gbps: f64,
        /// Switch→switch (global) channel bandwidth in Gbit/s.
        global_gbps: f64,
        /// Per-message latency in seconds.
        latency_s: f64,
        /// Achieved fraction of peak bandwidth in an MPI all-to-all.
        efficiency: f64,
    },
    /// Flat commodity Ethernet: injection-limited at every scale.
    Ethernet {
        /// Per-node link bandwidth in Gbit/s.
        gbps: f64,
        /// Per-message latency in seconds.
        latency_s: f64,
        /// Achieved fraction of peak bandwidth in an MPI all-to-all
        /// (low: TCP incast collapse under many-to-many traffic).
        efficiency: f64,
    },
    /// Zero-cost fabric for correctness-only runs.
    Ideal,
}

impl Fabric {
    /// Endeavor-like QDR InfiniBand fat tree (Table 1).
    pub fn endeavor_fat_tree() -> Fabric {
        Fabric::FatTree {
            link_gbps: 40.0,
            scalable_nodes: 32,
            latency_s: 2e-6,
            efficiency: 0.22,
        }
    }

    /// Gordon-like 4-ary 3-D torus, concentration 16 (Table 1, §7.4).
    pub fn gordon_torus() -> Fabric {
        Fabric::Torus3D {
            concentration: 16,
            local_gbps: 40.0,
            global_gbps: 120.0,
            latency_s: 2e-6,
            efficiency: 0.22,
        }
    }

    /// The Fig 8 configuration: Endeavor nodes on 10 Gigabit Ethernet.
    pub fn ethernet_10g() -> Fabric {
        Fabric::Ethernet {
            gbps: 10.0,
            latency_s: 5e-5,
            efficiency: 0.08,
        }
    }

    /// Torus edge length `k` for `n` nodes at this concentration
    /// (`n = concentration·k³`, rounded up).
    pub fn torus_k(concentration: usize, nodes: usize) -> usize {
        let mut k = 1usize;
        while concentration * k * k * k < nodes {
            k += 1;
        }
        k
    }

    /// Modeled time for one all-to-all exchange of `total_bytes` spread
    /// evenly over `nodes` nodes.
    pub fn all_to_all_time(&self, nodes: usize, total_bytes: u64) -> f64 {
        if nodes <= 1 {
            return 0.0;
        }
        let per_node = total_bytes as f64 / nodes as f64;
        match *self {
            Fabric::Ideal => 0.0,
            Fabric::Ethernet {
                gbps,
                latency_s,
                efficiency,
            } => per_node / (gbps * GBIT * efficiency) + latency_s * (nodes - 1) as f64,
            Fabric::FatTree {
                link_gbps,
                scalable_nodes,
                latency_s,
                efficiency,
            } => {
                // Full injection bandwidth while the tree scales linearly;
                // beyond that, aggregate bandwidth grows only as n^(2/3),
                // so the per-node share shrinks by (scalable/n)^(1/3).
                let derate = if nodes <= scalable_nodes {
                    1.0
                } else {
                    (scalable_nodes as f64 / nodes as f64).powf(1.0 / 3.0)
                };
                per_node / (link_gbps * GBIT * efficiency * derate)
                    + latency_s * (nodes - 1) as f64
            }
            Fabric::Torus3D {
                concentration,
                local_gbps,
                global_gbps,
                latency_s,
                efficiency,
            } => {
                // Paper §7.4: bounded by local links for small n, by the
                // (partition) bisection otherwise; take the max.
                let local_bound = per_node / (local_gbps * GBIT * efficiency);
                let switches = nodes.div_ceil(concentration);
                let bisect_bound = if switches > 1 {
                    let links = 2.0 * (switches as f64).powf(2.0 / 3.0);
                    (total_bytes as f64 / 2.0) / (links * global_gbps * GBIT * efficiency)
                } else {
                    0.0
                };
                local_bound.max(bisect_bound) + latency_s * (nodes - 1) as f64
            }
        }
    }

    /// Modeled time for a point-to-point message of `bytes`. Neighbor
    /// traffic is a single uncongested stream, so peak link bandwidth
    /// applies (no all-to-all efficiency derating).
    pub fn point_to_point_time(&self, bytes: u64) -> f64 {
        match *self {
            Fabric::Ideal => 0.0,
            Fabric::Ethernet { gbps, latency_s, .. } => {
                bytes as f64 / (gbps * GBIT) + latency_s
            }
            Fabric::FatTree {
                link_gbps,
                latency_s,
                ..
            } => bytes as f64 / (link_gbps * GBIT) + latency_s,
            Fabric::Torus3D {
                local_gbps,
                latency_s,
                ..
            } => bytes as f64 / (local_gbps * GBIT) + latency_s,
        }
    }

    /// Modeled barrier cost.
    pub fn barrier_time(&self, nodes: usize) -> f64 {
        if nodes <= 1 {
            return 0.0;
        }
        match *self {
            Fabric::Ideal => 0.0,
            Fabric::Ethernet { latency_s, .. }
            | Fabric::FatTree { latency_s, .. }
            | Fabric::Torus3D { latency_s, .. } => latency_s * (nodes as f64).log2().ceil(),
        }
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Fabric::FatTree { .. } => "fat-tree",
            Fabric::Torus3D { .. } => "3d-torus",
            Fabric::Ethernet { .. } => "ethernet",
            Fabric::Ideal => "ideal",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2^28 double-complex points per node, the paper's weak-scaling unit.
    const PAPER_BYTES_PER_NODE: u64 = (1u64 << 28) * 16;

    #[test]
    fn ideal_fabric_is_free() {
        let f = Fabric::Ideal;
        assert_eq!(f.all_to_all_time(64, 1 << 30), 0.0);
        assert_eq!(f.point_to_point_time(1 << 20), 0.0);
        assert_eq!(f.barrier_time(64), 0.0);
    }

    #[test]
    fn single_node_all_to_all_is_free() {
        assert_eq!(Fabric::gordon_torus().all_to_all_time(1, 1 << 30), 0.0);
    }

    #[test]
    fn ethernet_is_injection_limited_and_slow() {
        let f = Fabric::ethernet_10g();
        let t = f.all_to_all_time(32, PAPER_BYTES_PER_NODE * 32);
        // 4.3 GB per node at 0.08 × 1.25 GB/s ≈ 43 s: slow enough that a
        // triple-all-to-all FFT is completely communication-bound (Fig 8).
        assert!((20.0..100.0).contains(&t), "t = {t}");
    }

    #[test]
    fn fat_tree_scales_linearly_then_degrades() {
        let f = Fabric::endeavor_fat_tree();
        let t8 = f.all_to_all_time(8, PAPER_BYTES_PER_NODE * 8);
        let t32 = f.all_to_all_time(32, PAPER_BYTES_PER_NODE * 32);
        assert!((t32 - t8).abs() / t8 < 0.01, "t8={t8} t32={t32}");
        let t64 = f.all_to_all_time(64, PAPER_BYTES_PER_NODE * 64);
        assert!(t64 > t32 * 1.15, "t64={t64} t32={t32}");
    }

    #[test]
    fn torus_k_inverts_node_count() {
        assert_eq!(Fabric::torus_k(16, 16), 1);
        assert_eq!(Fabric::torus_k(16, 128), 2);
        assert_eq!(Fabric::torus_k(16, 1024), 4);
        assert_eq!(Fabric::torus_k(16, 1025), 5);
    }

    #[test]
    fn torus_one_switch_jobs_are_local_bound() {
        let f = Fabric::gordon_torus();
        let t16 = f.all_to_all_time(16, PAPER_BYTES_PER_NODE * 16);
        let local = PAPER_BYTES_PER_NODE as f64 / (40.0 * GBIT * 0.22);
        assert!((t16 - local).abs() < local * 0.01, "t16={t16} local={local}");
    }

    #[test]
    fn torus_partition_bisection_bites_from_32_nodes() {
        // Fig 6: "additional performance gain over Endeavor from 32 nodes
        // onwards … consistent with the narrower bandwidth of a 3-D torus".
        let f = Fabric::gordon_torus();
        let e = Fabric::endeavor_fat_tree();
        let t16_ratio = f.all_to_all_time(16, PAPER_BYTES_PER_NODE * 16)
            / e.all_to_all_time(16, PAPER_BYTES_PER_NODE * 16);
        let t32_ratio = f.all_to_all_time(32, PAPER_BYTES_PER_NODE * 32)
            / e.all_to_all_time(32, PAPER_BYTES_PER_NODE * 32);
        let t64_ratio = f.all_to_all_time(64, PAPER_BYTES_PER_NODE * 64)
            / e.all_to_all_time(64, PAPER_BYTES_PER_NODE * 64);
        assert!(t16_ratio < 1.05, "same cost in-switch: {t16_ratio}");
        assert!(t32_ratio > 1.2, "torus should lag at 32 nodes: {t32_ratio}");
        assert!(t64_ratio > t32_ratio * 0.9, "and keep lagging: {t64_ratio}");
    }

    #[test]
    fn torus_weak_scaled_time_grows_with_partition() {
        let f = Fabric::gordon_torus();
        let t32 = f.all_to_all_time(32, PAPER_BYTES_PER_NODE * 32);
        let t256 = f.all_to_all_time(256, PAPER_BYTES_PER_NODE * 256);
        assert!(t256 > t32 * 1.5, "t32={t32} t256={t256}");
    }

    #[test]
    fn point_to_point_uses_peak_link() {
        let f = Fabric::endeavor_fat_tree();
        let t = f.point_to_point_time(5_000_000_000);
        // 5 GB over 5 GB/s = 1 s (+ negligible latency).
        assert!((t - 1.0).abs() < 0.01, "t = {t}");
    }

    #[test]
    fn preset_names() {
        assert_eq!(Fabric::endeavor_fat_tree().name(), "fat-tree");
        assert_eq!(Fabric::gordon_torus().name(), "3d-torus");
        assert_eq!(Fabric::ethernet_10g().name(), "ethernet");
    }
}
