//! The Table 1 machine presets.
//!
//! Table 1 of the paper tabulates the Endeavor and Gordon configurations;
//! the `table1` harness prints this structure side by side with the
//! simulated substitutes used in this reproduction.

use crate::netmodel::Fabric;

/// Compute-node description (Table 1, "Compute node" block).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeConfig {
    /// Sockets × cores × SMT, e.g. (2, 8, 2).
    pub sockets_cores_smt: (usize, usize, usize),
    /// SIMD lanes (single precision, double precision).
    pub simd_width: (usize, usize),
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Microarchitecture name.
    pub microarchitecture: &'static str,
    /// Peak double-precision GFLOPS per node.
    pub dp_gflops: f64,
    /// L1/L2/L3 in KB.
    pub cache_kb: (usize, usize, usize),
    /// DRAM per node in GB.
    pub dram_gb: usize,
}

impl NodeConfig {
    /// The Xeon E5-2670 node both clusters in Table 1 use.
    pub fn xeon_e5_2670() -> Self {
        Self {
            sockets_cores_smt: (2, 8, 2),
            simd_width: (8, 4),
            clock_ghz: 2.60,
            microarchitecture: "Intel Xeon E5-2670 (Sandy Bridge)",
            dp_gflops: 330.0,
            cache_kb: (64, 256, 20480),
            dram_gb: 64,
        }
    }
}

/// A full system configuration (node + interconnect), i.e. one column of
/// Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// System name.
    pub name: &'static str,
    /// Per-node hardware.
    pub node: NodeConfig,
    /// Interconnect model.
    pub fabric: Fabric,
    /// Table 1 "Topology" row text.
    pub topology: &'static str,
}

impl SystemConfig {
    /// Endeavor: QDR InfiniBand, two-level 14-ary fat tree.
    pub fn endeavor() -> Self {
        Self {
            name: "Endeavor",
            node: NodeConfig::xeon_e5_2670(),
            fabric: Fabric::endeavor_fat_tree(),
            topology: "Two-level 14-ary fat tree (QDR InfiniBand 4x)",
        }
    }

    /// Gordon: QDR InfiniBand, 4-ary 3-D torus, concentration 16.
    pub fn gordon() -> Self {
        Self {
            name: "Gordon",
            node: NodeConfig::xeon_e5_2670(),
            fabric: Fabric::gordon_torus(),
            topology: "4-ary 3-D torus, concentration factor 16 (QDR InfiniBand 4x)",
        }
    }

    /// Endeavor nodes on 10 Gigabit Ethernet (the Fig 8 configuration).
    pub fn endeavor_10gbe() -> Self {
        Self {
            name: "Endeavor (10GbE)",
            node: NodeConfig::xeon_e5_2670(),
            fabric: Fabric::ethernet_10g(),
            topology: "10 Gigabit Ethernet",
        }
    }

    /// Render this configuration as Table 1-style rows.
    pub fn table_rows(&self) -> Vec<(String, String)> {
        let n = &self.node;
        vec![
            ("System".into(), self.name.into()),
            (
                "Sock. x core x SMT".into(),
                format!(
                    "{} x {} x {}",
                    n.sockets_cores_smt.0, n.sockets_cores_smt.1, n.sockets_cores_smt.2
                ),
            ),
            (
                "SIMD width".into(),
                format!("{} (SP), {} (DP)", n.simd_width.0, n.simd_width.1),
            ),
            ("Clock (GHz)".into(), format!("{:.2}", n.clock_ghz)),
            ("Micro-architecture".into(), n.microarchitecture.into()),
            ("DP GFLOPS".into(), format!("{:.0}", n.dp_gflops)),
            (
                "L1/L2/L3 Cache (KB)".into(),
                format!("{}/{}/{}", n.cache_kb.0, n.cache_kb.1, n.cache_kb.2),
            ),
            ("DRAM (GB)".into(), format!("{}", n.dram_gb)),
            ("Topology".into(), self.topology.into()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table1() {
        let e = SystemConfig::endeavor();
        assert_eq!(e.node.sockets_cores_smt, (2, 8, 2));
        assert_eq!(e.node.simd_width, (8, 4));
        assert_eq!(e.node.dp_gflops, 330.0);
        assert_eq!(e.node.dram_gb, 64);
        assert_eq!(e.fabric.name(), "fat-tree");

        let g = SystemConfig::gordon();
        assert_eq!(g.fabric.name(), "3d-torus");
        assert_eq!(g.node, e.node, "both clusters use the same node");

        assert_eq!(SystemConfig::endeavor_10gbe().fabric.name(), "ethernet");
    }

    #[test]
    fn table_rows_render() {
        let rows = SystemConfig::endeavor().table_rows();
        assert_eq!(rows.len(), 9);
        assert!(rows.iter().any(|(k, v)| k == "Clock (GHz)" && v == "2.60"));
        assert!(rows.iter().any(|(k, v)| k == "DP GFLOPS" && v == "330"));
    }
}
