//! Property tests on the simulated communicator: conservation and
//! permutation invariants of the collectives under random payloads.

use soi_simnet::Cluster;
use soi_testkit::{check, PropConfig};

#[test]
fn all_to_all_is_a_global_permutation() {
    check(
        "all_to_all_is_a_global_permutation",
        PropConfig::cases(12),
        |rng| {
            // Every element sent appears exactly once somewhere; nothing is
            // duplicated or lost.
            let p = rng.usize_in(2..6);
            let block = rng.usize_in(1..5);
            let seed = rng.next_u64();
            let outputs = Cluster::ideal(p).run_collect(move |comm| {
                let send: Vec<u64> = (0..p * block)
                    .map(|i| seed ^ ((comm.rank() * p * block + i) as u64))
                    .collect();
                let mut recv = vec![0u64; p * block];
                comm.all_to_all(&send, &mut recv);
                recv
            });
            let mut all: Vec<u64> = outputs.into_iter().flatten().collect();
            let mut expect: Vec<u64> = (0..p)
                .flat_map(|r| (0..p * block).map(move |i| seed ^ ((r * p * block + i) as u64)))
                .collect();
            all.sort_unstable();
            expect.sort_unstable();
            assert_eq!(all, expect, "p={p} block={block}");
        },
    );
}

#[test]
fn all_to_allv_conserves_elements() {
    check(
        "all_to_allv_conserves_elements",
        PropConfig::cases(12),
        |rng| {
            // Ragged counts derived from the seed; total payload conserved.
            let p = rng.usize_in(2..5);
            let seed = rng.next_u64();
            let outputs = Cluster::ideal(p).run_collect(move |comm| {
                let counts: Vec<usize> = (0..p)
                    .map(|d| ((seed as usize).wrapping_add(comm.rank() * 7 + d * 3)) % 4)
                    .collect();
                let total: usize = counts.iter().sum();
                let send: Vec<u32> = (0..total).map(|i| (comm.rank() * 1000 + i) as u32).collect();
                comm.all_to_allv(&send, &counts)
            });
            let received: usize = outputs.iter().map(Vec::len).sum();
            let sent: usize = (0..p)
                .map(|r| {
                    (0..p)
                        .map(|d| ((seed as usize).wrapping_add(r * 7 + d * 3)) % 4)
                        .sum::<usize>()
                })
                .sum();
            assert_eq!(received, sent, "p={p}");
        },
    );
}

#[test]
fn ring_halo_is_rotation() {
    check("ring_halo_is_rotation", PropConfig::cases(12), |rng| {
        let p = rng.usize_in(2..6);
        let len = rng.usize_in(1..8);
        let seed = rng.next_u64();
        let outputs = Cluster::ideal(p).run_collect(move |comm| {
            let mine: Vec<u64> = (0..len)
                .map(|i| seed ^ ((comm.rank() * len + i) as u64))
                .collect();
            let left = (comm.rank() + p - 1) % p;
            let right = (comm.rank() + 1) % p;
            comm.sendrecv(left, &mine, right)
        });
        for (rank, got) in outputs.iter().enumerate() {
            let src = (rank + 1) % p;
            let want: Vec<u64> = (0..len).map(|i| seed ^ ((src * len + i) as u64)).collect();
            assert_eq!(got, &want, "p={p} len={len} rank={rank}");
        }
    });
}

#[test]
fn allreduce_matches_local_reduction() {
    check(
        "allreduce_matches_local_reduction",
        PropConfig::cases(12),
        |rng| {
            let p = rng.usize_in(2..6);
            let vals = rng.f64_vec(6, -100.0..100.0);
            let vals_for_ranks: Vec<f64> = (0..p).map(|r| vals[r % vals.len()]).collect();
            let expect_sum: f64 = vals_for_ranks.iter().sum();
            let expect_max = vals_for_ranks.iter().copied().fold(f64::MIN, f64::max);
            let vr = &vals_for_ranks;
            let outputs = Cluster::ideal(p).run_collect(move |comm| {
                let v = vr[comm.rank()];
                (comm.allreduce_sum(v), comm.allreduce_max(v))
            });
            for (s, m) in outputs {
                assert!((s - expect_sum).abs() < 1e-9, "p={p}");
                assert_eq!(m, expect_max, "p={p}");
            }
        },
    );
}
