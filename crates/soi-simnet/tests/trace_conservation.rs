//! Property test for the comm-conservation validator: random sequences of
//! collectives on random cluster sizes must always produce traces that
//! validate, and the per-rank `CommStats` totals must balance cluster-wide
//! (every byte sent is a byte received — nothing is minted or lost).

use soi_simnet::{Cluster, Fabric};
use soi_testkit::{check, PropConfig};

/// One step of the random schedule; all ranks execute the same sequence
/// (blocking-MPI contract) with seed-derived payload sizes and roots.
#[derive(Clone, Copy, Debug)]
enum Op {
    Barrier,
    Broadcast { root: usize, len: usize },
    Gather { root: usize, len: usize },
    AllToAll { block: usize },
    AllToAllV { base: usize },
    AllGather { len: usize },
    RingHalo { len: usize },
}

#[test]
fn random_collective_sequences_conserve_bytes_and_validate() {
    check(
        "random_collective_sequences_conserve_bytes_and_validate",
        PropConfig::cases(10),
        |rng| {
            let p = rng.usize_in(2..9);
            let steps = rng.usize_in(3..9);
            let ops: Vec<Op> = (0..steps)
                .map(|_| match rng.usize_in(0..7) {
                    0 => Op::Barrier,
                    1 => Op::Broadcast {
                        root: rng.usize_in(0..p),
                        len: rng.usize_in(1..64),
                    },
                    2 => Op::Gather {
                        root: rng.usize_in(0..p),
                        len: rng.usize_in(1..64),
                    },
                    3 => Op::AllToAll {
                        block: rng.usize_in(1..16),
                    },
                    4 => Op::AllToAllV {
                        base: rng.usize_in(0..8),
                    },
                    5 => Op::AllGather {
                        len: rng.usize_in(1..32),
                    },
                    _ => Op::RingHalo {
                        len: rng.usize_in(1..32),
                    },
                })
                .collect();

            let ops_ref = &ops;
            let (results, set) = Cluster::new(p, Fabric::ethernet_10g()).run_traced(move |c| {
                for op in ops_ref {
                    match *op {
                        Op::Barrier => c.barrier(),
                        Op::Broadcast { root, len } => {
                            let data = if c.rank() == root {
                                vec![root as u64; len]
                            } else {
                                Vec::new()
                            };
                            let got = c.broadcast(root, data);
                            assert_eq!(got, vec![root as u64; len]);
                        }
                        Op::Gather { root, len } => {
                            let mine = vec![c.rank() as u32; len];
                            let got = c.gather(root, &mine);
                            assert_eq!(got.is_some(), c.rank() == root);
                        }
                        Op::AllToAll { block } => {
                            let send = vec![c.rank() as u8; p * block];
                            let mut recv = vec![0u8; p * block];
                            c.all_to_all(&send, &mut recv);
                        }
                        Op::AllToAllV { base } => {
                            // Ragged: rank r sends base + (r+d) % 3 items to d.
                            let counts: Vec<usize> =
                                (0..p).map(|d| base + (c.rank() + d) % 3).collect();
                            let total: usize = counts.iter().sum();
                            let send = vec![c.rank() as u16; total];
                            let _ = c.all_to_allv(&send, &counts);
                        }
                        Op::AllGather { len } => {
                            let got = c.all_gather(&vec![c.rank() as u32; len]);
                            assert_eq!(got.len(), p * len);
                        }
                        Op::RingHalo { len } => {
                            let left = (c.rank() + p - 1) % p;
                            let right = (c.rank() + 1) % p;
                            let _ = c.sendrecv(left, &vec![c.rank() as u64; len], right);
                        }
                    }
                }
                c.stats()
            });

            let summary = set
                .validate()
                .unwrap_or_else(|e| panic!("p={p} ops={ops:?}: trace invalid: {e}"));
            assert_eq!(summary.ranks, p);

            // Cluster-wide conservation of the CommStats totals.
            let sent: u64 = results.iter().map(|(s, _)| s.bytes_sent).sum();
            let received: u64 = results.iter().map(|(s, _)| s.bytes_received).sum();
            assert_eq!(sent, received, "p={p} ops={ops:?}");
            assert_eq!(summary.bytes, sent, "trace bytes must match stats");

            // Every rank executed the same number of collectives, and the
            // validator saw exactly that shared sequence.
            let colls = results[0].0.all_to_alls + results[0].0.other_collectives;
            for (s, _) in &results {
                assert_eq!(s.all_to_alls + s.other_collectives, colls);
            }
        },
    );
}
