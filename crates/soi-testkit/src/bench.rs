//! Lightweight bench runner: warmup + calibration + median-of-K timing.
//!
//! Each measurement prints one human-readable line and one JSON line
//! (prefixed `BENCH_JSON `) so harnesses and CI can scrape results
//! without a parser dependency. Not a statistics engine — medians over a
//! modest sample count are robust enough for the kernel-level ratios the
//! benches assert (optimized-vs-naive convolution, SOI-vs-plain FFT).
//!
//! Environment knobs for quick smoke runs:
//!
//! * `SOI_BENCH_SAMPLES` — samples per measurement (default 15).
//! * `SOI_BENCH_WARMUP_MS` — warmup wall time per measurement (default 60).
//! * `SOI_BENCH_TARGET_MS` — target wall time per sample (default 20).

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Summary statistics for one measurement, in nanoseconds per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchStats {
    /// `group/id` label.
    pub name: String,
    /// Median ns per iteration (the headline number).
    pub median_ns: f64,
    /// Mean ns per iteration.
    pub mean_ns: f64,
    /// Fastest sample's ns per iteration.
    pub min_ns: f64,
    /// Slowest sample's ns per iteration.
    pub max_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations folded into each sample.
    pub iters_per_sample: u64,
    /// Optional element-throughput denominator.
    pub elements: Option<u64>,
}

impl BenchStats {
    /// Elements per second at the median time, if a throughput was set.
    pub fn elements_per_sec(&self) -> Option<f64> {
        self.elements
            .map(|e| e as f64 / (self.median_ns * 1e-9))
    }
}

/// A bench group: shared configuration + a name prefix, criterion-style.
#[derive(Debug, Clone)]
pub struct Bencher {
    group: String,
    samples: usize,
    warmup: Duration,
    target_sample: Duration,
    elements: Option<u64>,
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

impl Bencher {
    /// New group with default (or env-overridden) timing budgets.
    pub fn new(group: &str) -> Self {
        Self {
            group: group.to_string(),
            samples: env_u64("SOI_BENCH_SAMPLES").unwrap_or(15) as usize,
            warmup: Duration::from_millis(env_u64("SOI_BENCH_WARMUP_MS").unwrap_or(60)),
            target_sample: Duration::from_millis(env_u64("SOI_BENCH_TARGET_MS").unwrap_or(20)),
            elements: None,
        }
    }

    /// Set the sample count (env override still wins).
    pub fn samples(mut self, k: usize) -> Self {
        if env_u64("SOI_BENCH_SAMPLES").is_none() {
            self.samples = k.max(3);
        }
        self
    }

    /// Declare the element count processed per iteration; subsequent
    /// measurements report elements/second at the median.
    pub fn throughput_elements(&mut self, elements: u64) -> &mut Self {
        self.elements = Some(elements);
        self
    }

    /// Measure `f`: warm up for the configured wall time, calibrate the
    /// iterations per sample, take K samples, report the median.
    pub fn bench<R>(&self, id: &str, mut f: impl FnMut() -> R) -> BenchStats {
        // Warmup + single-iteration estimate.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter_est = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;
        let iters_per_sample =
            ((self.target_sample.as_nanos() as f64 / per_iter_est).ceil() as u64).max(1);

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            per_iter_ns.push(t0.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let median_ns = if per_iter_ns.len() % 2 == 1 {
            per_iter_ns[per_iter_ns.len() / 2]
        } else {
            0.5 * (per_iter_ns[per_iter_ns.len() / 2 - 1] + per_iter_ns[per_iter_ns.len() / 2])
        };
        let stats = BenchStats {
            name: format!("{}/{}", self.group, id),
            median_ns,
            mean_ns: per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64,
            min_ns: per_iter_ns[0],
            max_ns: *per_iter_ns.last().unwrap(),
            samples: per_iter_ns.len(),
            iters_per_sample,
            elements: self.elements,
        };
        self.report(&stats);
        stats
    }

    fn report(&self, s: &BenchStats) {
        match s.elements_per_sec() {
            Some(eps) => println!(
                "{:<40} median {:>12} min {:>12} ({:.3e} elem/s, {} samples x {} iters)",
                s.name,
                fmt_ns(s.median_ns),
                fmt_ns(s.min_ns),
                eps,
                s.samples,
                s.iters_per_sample
            ),
            None => println!(
                "{:<40} median {:>12} min {:>12} ({} samples x {} iters)",
                s.name,
                fmt_ns(s.median_ns),
                fmt_ns(s.min_ns),
                s.samples,
                s.iters_per_sample
            ),
        }
        let throughput = s
            .elements_per_sec()
            .map(|e| format!(",\"elements_per_sec\":{e:.3}"))
            .unwrap_or_default();
        println!(
            "BENCH_JSON {{\"name\":\"{}\",\"median_ns\":{:.3},\"mean_ns\":{:.3},\"min_ns\":{:.3},\"max_ns\":{:.3},\"samples\":{},\"iters_per_sample\":{}{}}}",
            s.name, s.median_ns, s.mean_ns, s.min_ns, s.max_ns, s.samples, s.iters_per_sample, throughput
        );
    }
}

/// Human-scale duration formatting for ns-per-iteration figures.
fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Bencher {
        let mut b = Bencher {
            group: "test".into(),
            samples: 5,
            warmup: Duration::from_millis(1),
            target_sample: Duration::from_millis(1),
            elements: None,
        };
        b.elements = None;
        b
    }

    #[test]
    fn bench_reports_positive_times() {
        let stats = quick().bench("spin", || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        assert!(stats.median_ns > 0.0);
        assert!(stats.min_ns <= stats.median_ns && stats.median_ns <= stats.max_ns);
        assert_eq!(stats.samples, 5);
        assert_eq!(stats.name, "test/spin");
    }

    #[test]
    fn throughput_uses_median() {
        let mut b = quick();
        b.throughput_elements(1_000);
        let stats = b.bench("spin", || black_box(3u64).wrapping_mul(7));
        let eps = stats.elements_per_sec().unwrap();
        assert!((eps - 1_000.0 / (stats.median_ns * 1e-9)).abs() < 1.0);
    }

    #[test]
    fn fmt_ns_scales() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_500.0).ends_with("µs"));
        assert!(fmt_ns(12_500_000.0).ends_with("ms"));
        assert!(fmt_ns(2.5e9).ends_with('s'));
    }
}
