//! Shared fault-injection test helpers: kill a rank, run the survivors,
//! and assert they fail *fast* instead of hanging.
//!
//! Several suites need the same scaffold: bootstrap a mesh of per-rank
//! communicators, make one rank "die" (drop its endpoint so peers see
//! EOF / deadline expiry), drive the surviving ranks through a job on
//! one thread each, and then check two things —
//!
//! 1. **every** survivor observes the death as an error (no partial
//!    success, no survivor stuck in a blocking read), and
//! 2. the whole episode finishes inside a deadline (the transport's
//!    timeouts are actually bounding the hang).
//!
//! The helper is generic over the communicator type so this crate does
//! not depend on any transport; `soi-wire` and `soi-dist` instantiate it
//! with `WireComm` and whatever job/error types they are testing.

use std::fmt::Debug;
use std::time::{Duration, Instant};

/// What [`kill_and_run`] observed: the per-survivor errors (in the order
/// the surviving communicators were given) and the wall-clock time the
/// whole episode took.
pub struct KillOutcome<E> {
    /// One error per survivor; `kill_and_run` has already asserted every
    /// survivor failed, so callers only match on the error *kind*.
    pub errors: Vec<E>,
    /// Time from just after the victim died to the last survivor
    /// returning.
    pub elapsed: Duration,
}

/// Drop `comms[victim]` (the rank "dies"), run `job` on every surviving
/// communicator on its own thread, and assert that
///
/// * every survivor returns `Err` (panics otherwise — a survivor that
///   computes a result against a dead peer is a correctness bug), and
/// * the slowest survivor failed within `deadline` (panics otherwise —
///   an unbounded hang is exactly what the transports' timeouts exist
///   to prevent).
///
/// Returns the collected errors so callers can additionally assert the
/// error *variant* (e.g. `PeerLost` / `Timeout` on the wire, `Comm` at
/// the FFT layer).
///
/// # Panics
///
/// On out-of-range `victim`, on any survivor thread panicking, and on
/// the two assertions above.
pub fn kill_and_run<C, T, E>(
    mut comms: Vec<C>,
    victim: usize,
    deadline: Duration,
    job: impl Fn(&mut C) -> Result<T, E> + Sync,
) -> KillOutcome<E>
where
    C: Send,
    T: Send,
    E: Send + Debug,
{
    assert!(
        victim < comms.len(),
        "victim rank {victim} out of range for {} comms",
        comms.len()
    );
    let dead = comms.remove(victim);
    drop(dead);

    let job = &job;
    let t0 = Instant::now();
    let results = std::thread::scope(|s| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|mut c| s.spawn(move || job(&mut c)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("survivor panicked"))
            .collect::<Vec<_>>()
    });
    let elapsed = t0.elapsed();

    let errors: Vec<E> = results
        .into_iter()
        .map(|r| match r {
            Ok(_) => panic!("a survivor completed despite rank {victim} being dead"),
            Err(e) => e,
        })
        .collect();
    assert!(
        elapsed < deadline,
        "survivors took {elapsed:?} (deadline {deadline:?}) — \
         deadlines are not bounding the hang"
    );
    KillOutcome { errors, elapsed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    /// A toy "communicator": each survivor holds a Receiver whose only
    /// Sender lives inside the victim's comm, so dropping the victim is
    /// what closes every survivor's channel — the same shape as a TCP
    /// peer hanging up mid-collective.
    #[test]
    fn surfaces_errors_from_all_survivors() {
        let p = 4;
        let victim = 2;
        let (txs, rxs): (Vec<_>, Vec<_>) = (0..p).map(|_| mpsc::channel::<u8>()).unzip();
        let mut comms: Vec<(Option<mpsc::Receiver<u8>>, Vec<mpsc::Sender<u8>>)> = rxs
            .into_iter()
            .map(|rx| (Some(rx), Vec::new()))
            .collect();
        comms[victim].1 = txs; // victim owns every sender

        let out = kill_and_run(comms, victim, Duration::from_secs(5), |c| {
            // The victim is gone, so the sender side is closed and this
            // returns Disconnected immediately rather than timing out.
            c.0.take()
                .unwrap()
                .recv_timeout(Duration::from_secs(2))
                .map_err(|e| format!("{e}"))
        });
        assert_eq!(out.errors.len(), p - 1);
    }

    #[test]
    #[should_panic(expected = "a survivor completed")]
    fn panics_when_a_survivor_succeeds() {
        let comms: Vec<u8> = vec![0, 1, 2];
        let _ = kill_and_run(comms, 0, Duration::from_secs(1), |_| Ok::<_, String>(()));
    }

    #[test]
    #[should_panic(expected = "deadlines are not bounding the hang")]
    fn panics_when_the_deadline_is_blown() {
        let comms: Vec<u8> = vec![0, 1];
        let _ = kill_and_run(comms, 0, Duration::from_millis(1), |_| {
            std::thread::sleep(Duration::from_millis(50));
            Err::<(), _>("late")
        });
    }
}
