//! In-tree test and bench substrate for the SOI workspace.
//!
//! The workspace builds and tests **offline with zero registry
//! dependencies**; this crate supplies the three pieces that external
//! crates used to provide:
//!
//! * [`rng`] — a deterministic, seedable PRNG (SplitMix64 seeding feeding
//!   a xoshiro256\*\* generator) with `f64`/range/complex-vector helpers.
//!   Replaces `rand` everywhere signals or cases are generated.
//! * [`prop`] — a minimal property-test harness: seeded case generation,
//!   configurable iteration counts, failing-seed reporting (with an env
//!   var to replay exactly one case), and optional input shrinking.
//!   Replaces `proptest`.
//! * [`bench`] — a lightweight bench runner: warmup, iteration
//!   calibration, median-of-K timing, human-readable and JSON-line
//!   output. Replaces `criterion` in the harness-free benches.
//! * [`faults`] — a kill-one-rank scaffold shared by the transport and
//!   FFT-layer fault suites: drop a communicator, run the survivors on
//!   threads, assert they all fail within a deadline.
//!
//! Everything is deterministic by construction: the default property seed
//! is a fixed constant, so two consecutive `cargo test` runs exercise
//! identical RNG streams. Override with `SOI_TESTKIT_SEED` (new stream)
//! or `SOI_TESTKIT_REPLAY` (re-run exactly one reported failing case).

pub mod bench;
pub mod faults;
pub mod prop;
pub mod rng;

pub use bench::{black_box, BenchStats, Bencher};
pub use faults::{kill_and_run, KillOutcome};
pub use prop::{check, forall, PropConfig};
pub use rng::TestRng;
