//! Minimal property-test harness on top of [`TestRng`](crate::TestRng).
//!
//! Two entry points:
//!
//! * [`check`] — run a closure against `cases` independent RNG streams.
//!   Assertions panic as usual; on failure the harness prints the exact
//!   per-case seed and a one-line replay recipe, then re-raises.
//! * [`forall`] — value-based variant with optional input shrinking: a
//!   generator draws a case from the RNG, the property returns
//!   `Result<(), String>`, and on failure the harness greedily walks the
//!   user-supplied shrink candidates to a locally minimal failing input.
//!
//! Determinism contract: the default base seed is a fixed constant, so
//! two consecutive test runs exercise identical RNG streams. Environment
//! overrides:
//!
//! * `SOI_TESTKIT_SEED` — replace the base seed (decimal or `0x…` hex).
//! * `SOI_TESTKIT_CASES` — replace the per-property case count.
//! * `SOI_TESTKIT_REPLAY` — run exactly ONE case whose RNG is seeded with
//!   this value (this is the per-case seed printed on failure).

use crate::rng::{splitmix64, TestRng};
use std::fmt::Debug;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Fixed default base seed ("SOI" on a phone keypad, year of the paper).
pub const DEFAULT_SEED: u64 = 0x5012_2012_764C_0FF7;

/// Per-property configuration: case count + base seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PropConfig {
    /// Number of generated cases per property.
    pub cases: u64,
    /// Base seed; each case derives its own stream seed from it.
    pub seed: u64,
}

impl PropConfig {
    /// `cases` cases from the fixed default seed, honoring the
    /// `SOI_TESTKIT_SEED` / `SOI_TESTKIT_CASES` environment overrides.
    pub fn cases(cases: u64) -> Self {
        Self {
            cases: env_u64("SOI_TESTKIT_CASES").unwrap_or(cases),
            seed: env_u64("SOI_TESTKIT_SEED").unwrap_or(DEFAULT_SEED),
        }
    }

    /// Seed for case number `case`: one SplitMix64 step over a
    /// case-indexed state, so neighboring cases get unrelated streams.
    pub fn case_seed(&self, case: u64) -> u64 {
        let mut s = self.seed ^ case.wrapping_mul(0xA076_1D64_78BD_642F);
        splitmix64(&mut s)
    }
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("could not parse {name}={raw:?} as u64 (decimal or 0x-hex)"),
    }
}

/// Run `body` against `config.cases` independent RNG streams; on a panic
/// inside `body`, report the failing case's seed and replay recipe, then
/// re-raise the original panic.
pub fn check<F>(name: &str, config: PropConfig, body: F)
where
    F: Fn(&mut TestRng),
{
    if let Some(replay) = env_u64("SOI_TESTKIT_REPLAY") {
        let mut rng = TestRng::seed_from_u64(replay);
        eprintln!("[soi-testkit] {name}: replaying single case with seed {replay:#018x}");
        body(&mut rng);
        return;
    }
    for case in 0..config.cases {
        let case_seed = config.case_seed(case);
        let mut rng = TestRng::seed_from_u64(case_seed);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(&mut rng))) {
            eprintln!(
                "[soi-testkit] property '{name}' failed at case {case}/{total} \
                 (case seed {case_seed:#018x}, base seed {base:#018x}).\n\
                 [soi-testkit] replay just this case with: \
                 SOI_TESTKIT_REPLAY={case_seed:#x} cargo test {name}",
                total = config.cases,
                base = config.seed,
            );
            resume_unwind(payload);
        }
    }
}

/// Value-based property with optional shrinking.
///
/// `gen` draws a case, `shrink` proposes strictly "smaller" candidates
/// (return an empty `Vec` for no shrinking), and `test` returns `Err`
/// with a message on violation. On failure the harness greedily descends
/// through failing shrink candidates (bounded budget) and panics with the
/// minimal input found plus the seed/replay line.
pub fn forall<V, G, S, T>(name: &str, config: PropConfig, gen: G, shrink: S, test: T)
where
    V: Debug + Clone,
    G: Fn(&mut TestRng) -> V,
    S: Fn(&V) -> Vec<V>,
    T: Fn(&V) -> Result<(), String>,
{
    let run_case = |case_seed: u64, case_label: &str| {
        let mut rng = TestRng::seed_from_u64(case_seed);
        let value = gen(&mut rng);
        if let Err(first_msg) = test(&value) {
            let (minimal, msg, steps) = shrink_to_minimal(&shrink, &test, value, first_msg);
            panic!(
                "[soi-testkit] property '{name}' failed at {case_label} \
                 (case seed {case_seed:#018x}; replay with SOI_TESTKIT_REPLAY={case_seed:#x}).\n\
                 minimal failing input (after {steps} shrink steps): {minimal:?}\n\
                 {msg}"
            );
        }
    };
    if let Some(replay) = env_u64("SOI_TESTKIT_REPLAY") {
        eprintln!("[soi-testkit] {name}: replaying single case with seed {replay:#018x}");
        run_case(replay, "replay");
        return;
    }
    for case in 0..config.cases {
        run_case(config.case_seed(case), &format!("case {case}/{}", config.cases));
    }
}

/// Greedy shrink: repeatedly move to the first failing candidate until no
/// candidate fails or the budget runs out.
fn shrink_to_minimal<V, S, T>(shrink: &S, test: &T, mut value: V, mut msg: String) -> (V, String, u32)
where
    V: Clone,
    S: Fn(&V) -> Vec<V>,
    T: Fn(&V) -> Result<(), String>,
{
    const BUDGET: u32 = 1_000;
    let mut attempts = 0u32;
    let mut steps = 0u32;
    'descend: loop {
        for candidate in shrink(&value) {
            attempts += 1;
            if attempts > BUDGET {
                break 'descend;
            }
            if let Err(m) = test(&candidate) {
                value = candidate;
                msg = m;
                steps += 1;
                continue 'descend;
            }
        }
        break;
    }
    (value, msg, steps)
}

/// A no-op shrinker for [`forall`] when minimization is not useful.
pub fn no_shrink<V>(_: &V) -> Vec<V> {
    Vec::new()
}

/// Shrink a `usize` toward `floor`: halving steps plus decrement.
pub fn shrink_usize_toward(floor: usize) -> impl Fn(&usize) -> Vec<usize> {
    move |&v: &usize| {
        let mut out = Vec::new();
        if v > floor {
            let mid = floor + (v - floor) / 2;
            if mid != v {
                out.push(mid);
            }
            out.push(v - 1);
        }
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut ran = 0u64;
        let counter = std::cell::Cell::new(0u64);
        check("always_true", PropConfig { cases: 25, seed: 1 }, |rng| {
            let _ = rng.next_u64();
            counter.set(counter.get() + 1);
        });
        ran += counter.get();
        assert_eq!(ran, 25);
    }

    #[test]
    fn case_seeds_are_distinct_and_deterministic() {
        let cfg = PropConfig { cases: 100, seed: 42 };
        let seeds: Vec<u64> = (0..100).map(|c| cfg.case_seed(c)).collect();
        let again: Vec<u64> = (0..100).map(|c| cfg.case_seed(c)).collect();
        assert_eq!(seeds, again);
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "case seed collision");
    }

    #[test]
    fn failing_property_reports_and_panics() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check("fails_eventually", PropConfig { cases: 50, seed: 9 }, |rng| {
                // Fails as soon as a draw has its low bit set: quickly.
                assert_eq!(rng.next_u64() & 1, 0, "low bit set");
            });
        }));
        assert!(result.is_err(), "property should have failed");
    }

    #[test]
    fn forall_shrinks_to_minimal_counterexample() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            forall(
                "no_large_values",
                PropConfig { cases: 10, seed: 7 },
                |rng| rng.usize_in(0..1_000),
                shrink_usize_toward(0),
                |&v| {
                    if v >= 10 {
                        Err(format!("{v} >= 10"))
                    } else {
                        Ok(())
                    }
                },
            );
        }));
        let payload = result.expect_err("property should have failed");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        // Greedy shrink must land exactly on the boundary value 10.
        assert!(msg.contains("minimal failing input"), "{msg}");
        assert!(msg.contains(": 10\n"), "not minimal: {msg}");
    }

    #[test]
    fn no_shrink_returns_nothing() {
        assert!(no_shrink(&123u32).is_empty());
    }
}
