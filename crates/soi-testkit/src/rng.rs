//! Deterministic seedable PRNG: SplitMix64 seeding + xoshiro256**.
//!
//! The generator is Blackman & Vigna's xoshiro256** (public domain),
//! seeded through SplitMix64 so that *any* 64-bit seed — including 0 —
//! yields a well-mixed 256-bit state. Not cryptographic; built for
//! reproducible test cases, workload signals, and perturbation models.

use soi_num::Complex64;
use std::ops::Range;

/// Advance a SplitMix64 state and return the next output.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable xoshiro256** generator.
///
/// ```
/// use soi_testkit::TestRng;
///
/// let mut a = TestRng::seed_from_u64(7);
/// let mut b = TestRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed the full 256-bit state from one u64 via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Next 64 uniformly random bits (xoshiro256** scrambler).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32 uniformly random bits (upper half of a 64-bit draw).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn f64_in(&mut self, range: Range<f64>) -> f64 {
        debug_assert!(range.start < range.end, "empty f64 range");
        range.start + self.next_f64() * (range.end - range.start)
    }

    /// Uniform `u64` in `[0, bound)` via the widening-multiply bound map
    /// (bias ≤ bound/2⁶⁴ — immaterial for test-case generation).
    #[inline]
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "u64_below(0)");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` in `[range.start, range.end)`.
    #[inline]
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        debug_assert!(range.start < range.end, "empty usize range");
        range.start + self.u64_below((range.end - range.start) as u64) as usize
    }

    /// Random boolean with probability `p` of `true`.
    #[inline]
    pub fn bool_with(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// One uniformly random complex point in the square `[-1,1) × [-1,1)`.
    #[inline]
    pub fn complex_unit_square(&mut self) -> Complex64 {
        Complex64::new(self.f64_in(-1.0..1.0), self.f64_in(-1.0..1.0))
    }

    /// A length-`n` complex vector drawn from the unit square — the
    /// standard random-signal workload of the property suite.
    pub fn complex_vec(&mut self, n: usize) -> Vec<Complex64> {
        (0..n).map(|_| self.complex_unit_square()).collect()
    }

    /// A length-`n` real vector uniform in `[lo, hi)`.
    pub fn f64_vec(&mut self, n: usize, range: Range<f64>) -> Vec<f64> {
        (0..n).map(|_| self.f64_in(range.start..range.end)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Known-answer values for SplitMix64 from seed 0 (the published
        // reference sequence: 0xE220A8397B1DCDAF, ...).
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut s), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn xoshiro_known_answer_values() {
        // Known-answer regression pins for the full seed→output path.
        // Seed 0 matches the published xoshiro256** reference sequence
        // (SplitMix64-expanded state), the same vector the `rand` crate
        // tests `Xoshiro256StarStar::seed_from_u64(0)` against.
        let expect: [(u64, [u64; 4]); 4] = [
            (0x0, [0x99EC5F36CB75F2B4, 0xBF6E1F784956452A, 0x1A5F849D4933E6E0, 0x6AA594F1262D2D2C]),
            (0x1, [0xB3F2AF6D0FC710C5, 0x853B559647364CEA, 0x92F89756082A4514, 0x642E1C7BC266A3A7]),
            (0x7DC, [0x014A862F159FAD09, 0x825EE5D1DD03D4B7, 0x2C29298FE81176B5, 0xADBB959CF3C5C034]),
            (0xDEADBEEF, [0xC5555444A74D7E83, 0x65C30D37B4B16E38, 0x54F773200A4EFA23, 0x429AED75FB958AF7]),
        ];
        for (seed, want) in expect {
            let mut rng = TestRng::seed_from_u64(seed);
            let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
            assert_eq!(got, want, "seed {seed:#x}");
        }
    }

    #[test]
    fn f64_known_answer_values() {
        // Pins the u64→f64 mapping (shift by 11, scale by 2⁻⁵³).
        let mut rng = TestRng::seed_from_u64(2012);
        let got: Vec<f64> = (0..4).map(|_| rng.next_f64()).collect();
        let want = [
            0.005043398375731756,
            0.509260524498145,
            0.17250308764784505,
            0.6786435611900492,
        ];
        assert_eq!(got, want);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = TestRng::seed_from_u64(0xDEAD_BEEF);
        let mut b = TestRng::seed_from_u64(0xDEAD_BEEF);
        for _ in 0..256 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = TestRng::seed_from_u64(1);
        let mut b = TestRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut rng = TestRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let u = rng.usize_in(3..17);
            assert!((3..17).contains(&u));
            let f = rng.f64_in(-2.5..0.5);
            assert!((-2.5..0.5).contains(&f));
        }
    }

    #[test]
    fn usize_in_covers_every_value() {
        let mut rng = TestRng::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.usize_in(0..8)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn complex_vec_is_deterministic_and_bounded() {
        let a = TestRng::seed_from_u64(6).complex_vec(128);
        let b = TestRng::seed_from_u64(6).complex_vec(128);
        assert_eq!(
            a.iter().map(|c| (c.re, c.im)).collect::<Vec<_>>(),
            b.iter().map(|c| (c.re, c.im)).collect::<Vec<_>>()
        );
        assert!(a.iter().all(|c| c.re.abs() <= 1.0 && c.im.abs() <= 1.0));
    }
}
