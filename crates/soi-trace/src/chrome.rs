//! Chrome trace-event export.
//!
//! Converts a [`TraceSet`] into the JSON consumed by `chrome://tracing`,
//! Perfetto (<https://ui.perfetto.dev>), and Speedscope: one process per
//! rank, one thread per worker, phase spans as B/E pairs, tasks as
//! complete (`X`) slices, messages and collectives as instants, counters
//! as counter tracks.
//!
//! Timestamps use the rank-local monotonic clock (`t_mono_ns`, in
//! microseconds) because every event carries it on every transport;
//! virtual-clock seconds, when present, are preserved in `args.t_virt`
//! so simulated time is still inspectable per event.

use crate::event::{Event, EventKind};
use crate::validate::TraceSet;
use std::fmt::Write;

/// Minimal JSON string escape (quotes, backslashes, control bytes).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format an f64 the way the rest of the trace schema does: finite
/// shortest roundtrip, no NaN/inf (callers never pass those).
fn num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{:.1}", v)
    } else {
        format!("{}", v)
    }
}

fn push_event(out: &mut String, ev: &Event, first: &mut bool) {
    let ts_us = ev.t_mono_ns as f64 / 1000.0;
    let pid = ev.rank;
    let tid = ev.worker;
    let tv = ev
        .t_virt
        .map(|t| format!(",\"t_virt\":{}", num(t)))
        .unwrap_or_default();
    let record = match &ev.kind {
        EventKind::SpanBegin { phase } => format!(
            "{{\"name\":\"{}\",\"ph\":\"B\",\"ts\":{},\"pid\":{pid},\"tid\":{tid},\"args\":{{\"kind\":\"phase\"{tv}}}}}",
            esc(phase),
            num(ts_us)
        ),
        EventKind::SpanEnd { phase } => format!(
            "{{\"name\":\"{}\",\"ph\":\"E\",\"ts\":{},\"pid\":{pid},\"tid\":{tid},\"args\":{{\"kind\":\"phase\"{tv}}}}}",
            esc(phase),
            num(ts_us)
        ),
        EventKind::Send { peer, bytes } => format!(
            "{{\"name\":\"send -> {peer}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{pid},\"tid\":{tid},\"args\":{{\"peer\":{peer},\"bytes\":{bytes}{tv}}}}}",
            num(ts_us)
        ),
        EventKind::Recv { peer, bytes } => format!(
            "{{\"name\":\"recv <- {peer}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{pid},\"tid\":{tid},\"args\":{{\"peer\":{peer},\"bytes\":{bytes}{tv}}}}}",
            num(ts_us)
        ),
        EventKind::Collective { op, bytes } => format!(
            "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"p\",\"ts\":{},\"pid\":{pid},\"tid\":{tid},\"args\":{{\"bytes\":{bytes}{tv}}}}}",
            esc(op.name()),
            num(ts_us)
        ),
        EventKind::Task { index, dur_ns } => {
            // t_mono_ns is recorded at retire; shift back for the start.
            let dur_us = *dur_ns as f64 / 1000.0;
            let start = (ts_us - dur_us).max(0.0);
            format!(
                "{{\"name\":\"task {index}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":{tid},\"args\":{{\"index\":{index}}}}}",
                num(start),
                num(dur_us)
            )
        }
        EventKind::Counter { name, value } => format!(
            "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":{pid},\"tid\":{tid},\"args\":{{\"value\":{}}}}}",
            esc(name),
            num(ts_us),
            num(*value)
        ),
        EventKind::Rejoin { epoch } => format!(
            "{{\"name\":\"rejoin epoch {epoch}\",\"ph\":\"i\",\"s\":\"p\",\"ts\":{},\"pid\":{pid},\"tid\":{tid},\"args\":{{\"epoch\":{epoch}{tv}}}}}",
            num(ts_us)
        ),
    };
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str("  ");
    out.push_str(&record);
}

/// Render `set` as a complete Chrome trace-event JSON document.
///
/// The output is the object form (`{"traceEvents": [...]}`) with
/// microsecond timestamps; rank `r` appears as process `r`, worker `w`
/// as thread `w`, plus metadata records naming each process.
pub fn to_chrome_trace(set: &TraceSet) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    for (r, stream) in set.ranks.iter().enumerate() {
        if stream.is_empty() {
            continue;
        }
        let meta = format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{r},\"tid\":0,\"args\":{{\"name\":\"rank {r}\"}}}}"
        );
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str("  ");
        out.push_str(&meta);
        for ev in stream {
            push_event(&mut out, ev, &mut first);
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CollectiveOp;
    use crate::recorder::Trace;

    fn sample_set() -> TraceSet {
        let streams = (0..2)
            .map(|r| {
                let t = Trace::recording(r);
                t.span_begin("halo", Some(0.5));
                t.send(1 - r, 64, Some(0.6));
                t.recv(1 - r, 64, Some(0.7));
                t.collective(CollectiveOp::AllToAll, 128, None);
                t.task(3, 7, 1500);
                t.counter("flops", 42.0);
                t.span_end("halo", Some(0.9));
                t.drain()
            })
            .collect();
        TraceSet::from_streams(streams)
    }

    #[test]
    fn emits_balanced_json_with_all_kinds() {
        let doc = to_chrome_trace(&sample_set());
        assert!(doc.starts_with('{') && doc.trim_end().ends_with('}'));
        // Balanced braces/brackets (no nested strings contain them).
        let opens = doc.matches('{').count();
        let closes = doc.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
        for needle in [
            "\"traceEvents\"",
            "\"ph\":\"B\"",
            "\"ph\":\"E\"",
            "\"ph\":\"i\"",
            "\"ph\":\"X\"",
            "\"ph\":\"C\"",
            "\"ph\":\"M\"",
            "\"name\":\"rank 0\"",
            "\"name\":\"rank 1\"",
            "\"name\":\"all_to_all\"",
            "\"t_virt\":0.5",
        ] {
            assert!(doc.contains(needle), "missing {needle} in:\n{doc}");
        }
    }

    #[test]
    fn span_pairs_are_ordered_and_tasks_get_durations() {
        let doc = to_chrome_trace(&sample_set());
        let b = doc.find("\"ph\":\"B\"").unwrap();
        let e = doc.find("\"ph\":\"E\"").unwrap();
        assert!(b < e);
        assert!(doc.contains("\"dur\":1.5"), "1500ns task -> 1.5us slice");
    }

    #[test]
    fn escapes_hostile_names() {
        assert_eq!(esc("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(esc("x\ny"), "x\\u000ay");
    }

    #[test]
    fn empty_set_is_valid_json_shell() {
        let doc = to_chrome_trace(&TraceSet::default());
        assert!(doc.contains("\"traceEvents\":[\n\n]"));
    }
}
