//! The trace event model and its JSON-lines wire format.
//!
//! One event is one line. The schema is flat on purpose — a handful of
//! fixed keys plus a `kind` discriminator — so the parser below stays a
//! few dozen lines and the files stream through `grep`/`jq` naturally:
//!
//! ```text
//! {"rank":0,"worker":0,"t_mono_ns":1203,"t_virt":0.0014,"kind":"span_begin","phase":"conv"}
//! {"rank":0,"worker":0,"t_mono_ns":2311,"t_virt":null,"kind":"send","peer":1,"bytes":4096}
//! {"rank":0,"worker":2,"t_mono_ns":2410,"t_virt":null,"kind":"task","index":5,"dur_ns":8000}
//! {"rank":0,"worker":0,"t_mono_ns":3555,"t_virt":0.0021,"kind":"collective","op":"all_to_all","bytes":16384}
//! {"rank":0,"worker":0,"t_mono_ns":3601,"t_virt":null,"kind":"counter","name":"flops","value":1.5e9}
//! ```
//!
//! `t_mono_ns` is nanoseconds on the recording rank's monotonic clock
//! (rank-local — only the virtual clock is comparable across ranks);
//! `t_virt` is the rank's virtual-clock reading in seconds, `null` where
//! the recording site has no clock (single-process runs, pool tasks).

use std::borrow::Cow;

/// Which collective a [`EventKind::Collective`] event participated in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveOp {
    /// Pure synchronization.
    Barrier,
    /// One-to-all broadcast.
    Broadcast,
    /// All-to-root gather.
    Gather,
    /// All-to-all gather (allreduce is built on this).
    AllGather,
    /// Equal-block all-to-all.
    AllToAll,
    /// Variable-count all-to-all.
    AllToAllV,
    /// Paired neighbor exchange (synchronizing, like the collectives).
    SendRecv,
}

impl CollectiveOp {
    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            CollectiveOp::Barrier => "barrier",
            CollectiveOp::Broadcast => "broadcast",
            CollectiveOp::Gather => "gather",
            CollectiveOp::AllGather => "all_gather",
            CollectiveOp::AllToAll => "all_to_all",
            CollectiveOp::AllToAllV => "all_to_allv",
            CollectiveOp::SendRecv => "sendrecv",
        }
    }

    /// Inverse of [`CollectiveOp::name`].
    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "barrier" => CollectiveOp::Barrier,
            "broadcast" => CollectiveOp::Broadcast,
            "gather" => CollectiveOp::Gather,
            "all_gather" => CollectiveOp::AllGather,
            "all_to_all" => CollectiveOp::AllToAll,
            "all_to_allv" => CollectiveOp::AllToAllV,
            "sendrecv" => CollectiveOp::SendRecv,
            _ => return None,
        })
    }
}

/// What happened.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A phase span opened (phases nest LIFO per rank).
    SpanBegin {
        /// Phase name (`&'static` when recorded; owned after parsing).
        phase: Cow<'static, str>,
    },
    /// The innermost open span of this phase closed.
    SpanEnd {
        /// Phase name.
        phase: Cow<'static, str>,
    },
    /// Payload handed to the network, destined for `peer`.
    Send {
        /// Destination rank.
        peer: u32,
        /// Payload bytes.
        bytes: u64,
    },
    /// Payload received from `peer`.
    Recv {
        /// Source rank.
        peer: u32,
        /// Payload bytes.
        bytes: u64,
    },
    /// This rank completed a synchronizing collective. `t_virt` on the
    /// enclosing event is the clock *after* the synchronization, which is
    /// what the validator compares across ranks at barriers.
    Collective {
        /// The operation.
        op: CollectiveOp,
        /// Aggregate payload bytes the fabric model was charged for.
        bytes: u64,
    },
    /// One task of a `ThreadPool::run` call retired.
    Task {
        /// Task index within the parallel-for.
        index: u32,
        /// Task wall time in nanoseconds.
        dur_ns: u64,
    },
    /// A free-form named quantity (flops, element counts, …).
    Counter {
        /// Counter name.
        name: Cow<'static, str>,
        /// Value.
        value: f64,
    },
    /// This rank entered job epoch `epoch` after a fault: either it is a
    /// respawned incarnation reclaiming a dead rank's slot, or a survivor
    /// that re-wired its mesh to admit one. Recovery replays from
    /// checkpoints, so all traffic recorded after this marker belongs to
    /// the clean replay; the validator requires every rank to agree on
    /// the epoch sequence, exactly like collectives.
    Rejoin {
        /// The new job epoch (the initial bootstrap is epoch 0).
        epoch: u64,
    },
}

/// One structured trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Recording rank.
    pub rank: u32,
    /// Worker within the rank (0 = the rank's main thread).
    pub worker: u32,
    /// Rank-local monotonic nanoseconds since the recorder was created.
    pub t_mono_ns: u64,
    /// Virtual-clock seconds at record time, when the site has a clock.
    pub t_virt: Option<f64>,
    /// Payload.
    pub kind: EventKind,
}

impl Event {
    /// Serialize as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        use std::fmt::Write;
        let mut s = String::with_capacity(96);
        let _ = write!(
            s,
            "{{\"rank\":{},\"worker\":{},\"t_mono_ns\":{},\"t_virt\":",
            self.rank, self.worker, self.t_mono_ns
        );
        match self.t_virt {
            Some(v) => {
                let _ = write!(s, "{v}");
            }
            None => s.push_str("null"),
        }
        match &self.kind {
            EventKind::SpanBegin { phase } => {
                let _ = write!(s, ",\"kind\":\"span_begin\",\"phase\":\"{phase}\"");
            }
            EventKind::SpanEnd { phase } => {
                let _ = write!(s, ",\"kind\":\"span_end\",\"phase\":\"{phase}\"");
            }
            EventKind::Send { peer, bytes } => {
                let _ = write!(s, ",\"kind\":\"send\",\"peer\":{peer},\"bytes\":{bytes}");
            }
            EventKind::Recv { peer, bytes } => {
                let _ = write!(s, ",\"kind\":\"recv\",\"peer\":{peer},\"bytes\":{bytes}");
            }
            EventKind::Collective { op, bytes } => {
                let _ = write!(
                    s,
                    ",\"kind\":\"collective\",\"op\":\"{}\",\"bytes\":{bytes}",
                    op.name()
                );
            }
            EventKind::Task { index, dur_ns } => {
                let _ = write!(s, ",\"kind\":\"task\",\"index\":{index},\"dur_ns\":{dur_ns}");
            }
            EventKind::Counter { name, value } => {
                let _ = write!(s, ",\"kind\":\"counter\",\"name\":\"{name}\",\"value\":{value}");
            }
            EventKind::Rejoin { epoch } => {
                let _ = write!(s, ",\"kind\":\"rejoin\",\"epoch\":{epoch}");
            }
        }
        s.push('}');
        s
    }

    /// Parse one JSON line produced by [`Event::to_json_line`].
    pub fn from_json_line(line: &str) -> Result<Event, String> {
        let fields = parse_flat_object(line)?;
        let num = |key: &str| -> Result<f64, String> {
            match fields.iter().find(|(k, _)| k == key) {
                Some((_, JsonVal::Num(v))) => Ok(*v),
                Some(_) => Err(format!("field `{key}` is not a number")),
                None => Err(format!("missing field `{key}`")),
            }
        };
        let string = |key: &str| -> Result<&str, String> {
            match fields.iter().find(|(k, _)| k == key) {
                Some((_, JsonVal::Str(v))) => Ok(v.as_str()),
                Some(_) => Err(format!("field `{key}` is not a string")),
                None => Err(format!("missing field `{key}`")),
            }
        };
        let rank = num("rank")? as u32;
        let worker = num("worker")? as u32;
        let t_mono_ns = num("t_mono_ns")? as u64;
        let t_virt = match fields.iter().find(|(k, _)| k == "t_virt") {
            Some((_, JsonVal::Num(v))) => Some(*v),
            Some((_, JsonVal::Null)) => None,
            Some(_) => return Err("field `t_virt` is not a number or null".into()),
            None => return Err("missing field `t_virt`".into()),
        };
        let kind = match string("kind")? {
            "span_begin" => EventKind::SpanBegin {
                phase: Cow::Owned(string("phase")?.to_string()),
            },
            "span_end" => EventKind::SpanEnd {
                phase: Cow::Owned(string("phase")?.to_string()),
            },
            "send" => EventKind::Send {
                peer: num("peer")? as u32,
                bytes: num("bytes")? as u64,
            },
            "recv" => EventKind::Recv {
                peer: num("peer")? as u32,
                bytes: num("bytes")? as u64,
            },
            "collective" => EventKind::Collective {
                op: CollectiveOp::from_name(string("op")?)
                    .ok_or_else(|| format!("unknown collective op `{}`", string("op").unwrap()))?,
                bytes: num("bytes")? as u64,
            },
            "task" => EventKind::Task {
                index: num("index")? as u32,
                dur_ns: num("dur_ns")? as u64,
            },
            "counter" => EventKind::Counter {
                name: Cow::Owned(string("name")?.to_string()),
                value: num("value")?,
            },
            "rejoin" => EventKind::Rejoin {
                epoch: num("epoch")? as u64,
            },
            other => return Err(format!("unknown event kind `{other}`")),
        };
        Ok(Event {
            rank,
            worker,
            t_mono_ns,
            t_virt,
            kind,
        })
    }
}

/// A value in the flat schema: only strings, numbers, and null appear.
enum JsonVal {
    Str(String),
    Num(f64),
    Null,
}

/// Minimal parser for one flat `{"key":value,...}` object — the entire
/// JSON surface the schema above uses (string values never contain
/// escapes other than `\"` and `\\`, which are handled anyway).
fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonVal)>, String> {
    let b = line.as_bytes();
    let mut i = 0usize;
    let skip_ws = |i: &mut usize| {
        while *i < b.len() && (b[*i] as char).is_ascii_whitespace() {
            *i += 1;
        }
    };
    let parse_string = |i: &mut usize| -> Result<String, String> {
        if *i >= b.len() || b[*i] != b'"' {
            return Err(format!("expected string at byte {i:?}"));
        }
        *i += 1;
        let mut out = String::new();
        while *i < b.len() {
            match b[*i] {
                b'"' => {
                    *i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    *i += 1;
                    if *i >= b.len() {
                        return Err("dangling escape".into());
                    }
                    out.push(b[*i] as char);
                    *i += 1;
                }
                c => {
                    out.push(c as char);
                    *i += 1;
                }
            }
        }
        Err("unterminated string".into())
    };
    skip_ws(&mut i);
    if i >= b.len() || b[i] != b'{' {
        return Err("expected `{`".into());
    }
    i += 1;
    let mut fields = Vec::new();
    loop {
        skip_ws(&mut i);
        if i < b.len() && b[i] == b'}' {
            break;
        }
        let key = parse_string(&mut i)?;
        skip_ws(&mut i);
        if i >= b.len() || b[i] != b':' {
            return Err(format!("expected `:` after key `{key}`"));
        }
        i += 1;
        skip_ws(&mut i);
        let val = if i < b.len() && b[i] == b'"' {
            JsonVal::Str(parse_string(&mut i)?)
        } else if line[i..].starts_with("null") {
            i += 4;
            JsonVal::Null
        } else {
            let start = i;
            while i < b.len() && !matches!(b[i], b',' | b'}') {
                i += 1;
            }
            let tok = line[start..i].trim();
            JsonVal::Num(
                tok.parse::<f64>()
                    .map_err(|_| format!("bad number `{tok}` for key `{key}`"))?,
            )
        };
        fields.push((key, val));
        skip_ws(&mut i);
        match b.get(i) {
            Some(b',') => i += 1,
            Some(b'}') => break,
            _ => return Err("expected `,` or `}`".into()),
        }
    }
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(e: Event) {
        let line = e.to_json_line();
        let back = Event::from_json_line(&line).expect(&line);
        assert_eq!(e, back, "line: {line}");
    }

    #[test]
    fn all_kinds_roundtrip() {
        roundtrip(Event {
            rank: 3,
            worker: 0,
            t_mono_ns: 123_456_789,
            t_virt: Some(0.001523),
            kind: EventKind::SpanBegin {
                phase: Cow::Borrowed("conv"),
            },
        });
        roundtrip(Event {
            rank: 0,
            worker: 0,
            t_mono_ns: 9,
            t_virt: None,
            kind: EventKind::SpanEnd {
                phase: Cow::Borrowed("fft_m"),
            },
        });
        roundtrip(Event {
            rank: 1,
            worker: 0,
            t_mono_ns: 44,
            t_virt: Some(2.5e-9),
            kind: EventKind::Send { peer: 7, bytes: 65536 },
        });
        roundtrip(Event {
            rank: 1,
            worker: 0,
            t_mono_ns: 45,
            t_virt: None,
            kind: EventKind::Recv { peer: 0, bytes: 1 },
        });
        roundtrip(Event {
            rank: 2,
            worker: 0,
            t_mono_ns: 46,
            t_virt: Some(1.0 / 3.0),
            kind: EventKind::Collective {
                op: CollectiveOp::AllToAllV,
                bytes: u64::from(u32::MAX),
            },
        });
        roundtrip(Event {
            rank: 0,
            worker: 5,
            t_mono_ns: 47,
            t_virt: None,
            kind: EventKind::Task {
                index: 12,
                dur_ns: 88_000,
            },
        });
        roundtrip(Event {
            rank: 0,
            worker: 0,
            t_mono_ns: 48,
            t_virt: None,
            kind: EventKind::Counter {
                name: Cow::Borrowed("flops"),
                value: 1.5e9,
            },
        });
        roundtrip(Event {
            rank: 2,
            worker: 0,
            t_mono_ns: 49,
            t_virt: None,
            kind: EventKind::Rejoin { epoch: 1 },
        });
    }

    #[test]
    fn collective_names_invert() {
        for op in [
            CollectiveOp::Barrier,
            CollectiveOp::Broadcast,
            CollectiveOp::Gather,
            CollectiveOp::AllGather,
            CollectiveOp::AllToAll,
            CollectiveOp::AllToAllV,
            CollectiveOp::SendRecv,
        ] {
            assert_eq!(CollectiveOp::from_name(op.name()), Some(op));
        }
        assert_eq!(CollectiveOp::from_name("bogus"), None);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Event::from_json_line("not json").is_err());
        assert!(Event::from_json_line("{}").is_err());
        assert!(Event::from_json_line(
            "{\"rank\":0,\"worker\":0,\"t_mono_ns\":1,\"t_virt\":null,\"kind\":\"wat\"}"
        )
        .is_err());
    }

    #[test]
    fn virtual_time_roundtrips_to_the_bit() {
        let v = 0.1 + 0.2; // not representable "nicely"
        let e = Event {
            rank: 0,
            worker: 0,
            t_mono_ns: 0,
            t_virt: Some(v),
            kind: EventKind::Collective {
                op: CollectiveOp::Barrier,
                bytes: 0,
            },
        };
        let back = Event::from_json_line(&e.to_json_line()).unwrap();
        assert_eq!(back.t_virt.unwrap().to_bits(), v.to_bits());
    }
}
