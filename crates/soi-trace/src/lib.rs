//! Structured execution tracing for the SOI workspace.
//!
//! The paper's whole argument is a *phase breakdown* — communication is
//! 50–90% of distributed FFT time and SOI removes two of three
//! all-to-alls — so every execution layer of this repo can report what it
//! did through one substrate:
//!
//! * [`Trace`] / [`recorder::Recorder`] — a cheap, clonable handle that
//!   either records fixed-size [`Event`]s into a preallocated buffer or,
//!   when disabled (the default), compiles every call down to a null
//!   check. No strings are allocated on the hot path: phase and counter
//!   names are `&'static str`, payloads are plain integers.
//! * [`Event`] — spans (phase begin/end with monotonic *and* virtual-clock
//!   timestamps), per-message send/recv records, collective participation
//!   records, per-task pool timings, and free-form counters.
//! * [`TraceSet`] — the merged per-rank event streams of one run, with a
//!   JSON-lines sink ([`TraceSet::write_jsonl`] / [`TraceSet::read_jsonl`];
//!   the `SOI_TRACE` env var or CLI `--trace` pick the path) and the
//!   **conservation validator** ([`TraceSet::validate`]): bytes sent must
//!   equal bytes received on every directed link, every rank must execute
//!   the identical collective sequence, virtual clocks must agree at
//!   barriers and never run backwards, and spans must nest. A dropped or
//!   duplicated message event — i.e. a race or protocol bug in the
//!   simulated network — fails validation mechanically.
//!
//! The crate is std-only and sits below every other crate in the
//! workspace (even `soi-pool`), so any layer can emit events.

pub mod chrome;
pub mod event;
pub mod recorder;
pub mod validate;

pub use chrome::to_chrome_trace;
pub use event::{CollectiveOp, Event, EventKind};
pub use recorder::{Recorder, Trace};
pub use validate::{phase_totals, TraceError, TraceSet, TraceSummary};

/// The trace output path configured via the `SOI_TRACE` environment
/// variable, if any (empty values count as unset).
pub fn path_from_env() -> Option<String> {
    std::env::var("SOI_TRACE").ok().filter(|s| !s.is_empty())
}
