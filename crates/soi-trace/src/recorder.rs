//! The recording side: a shared, thread-safe event buffer behind a
//! null-checkable handle.
//!
//! [`Trace`] is the type instrumented code holds. Disabled (the default)
//! it is a `None` — every recording method is a branch on a null pointer
//! and touches nothing else, which is what keeps tracing out of the hot
//! path when it is off. Enabled, it is an `Arc` onto a [`Recorder`] whose
//! buffer is preallocated; recording an event is one short mutex-guarded
//! push of a fixed-size struct (phase/counter names are `&'static str`,
//! so no per-event heap allocation happens — the buffer itself grows
//! geometrically like any `Vec` if a run outlives its preallocation).

use crate::event::{CollectiveOp, Event, EventKind};
use std::borrow::Cow;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default preallocated event capacity per recorder.
const DEFAULT_CAPACITY: usize = 4096;

/// A per-rank (or per-process) event sink.
#[derive(Debug)]
pub struct Recorder {
    rank: u32,
    epoch: Instant,
    events: Mutex<Vec<Event>>,
}

impl Recorder {
    /// A recorder tagged with `rank`, preallocated for `capacity` events.
    pub fn with_capacity(rank: usize, capacity: usize) -> Self {
        Self {
            rank: rank as u32,
            epoch: Instant::now(),
            events: Mutex::new(Vec::with_capacity(capacity)),
        }
    }

    fn record(&self, worker: u32, t_virt: Option<f64>, kind: EventKind) {
        let t_mono_ns = self.epoch.elapsed().as_nanos() as u64;
        self.events.lock().expect("trace buffer poisoned").push(Event {
            rank: self.rank,
            worker,
            t_mono_ns,
            t_virt,
            kind,
        });
    }
}

/// Cheap, clonable handle onto a [`Recorder`] — or onto nothing.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    inner: Option<Arc<Recorder>>,
}

impl Trace {
    /// The no-op handle: every recording call is a null check.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A recording handle tagged with `rank`.
    pub fn recording(rank: usize) -> Self {
        Self {
            inner: Some(Arc::new(Recorder::with_capacity(rank, DEFAULT_CAPACITY))),
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The rank this handle records under (None when disabled).
    pub fn rank(&self) -> Option<u32> {
        self.inner.as_ref().map(|r| r.rank)
    }

    /// Open a phase span (on the rank's main thread, worker 0).
    pub fn span_begin(&self, phase: &'static str, t_virt: Option<f64>) {
        if let Some(r) = &self.inner {
            r.record(
                0,
                t_virt,
                EventKind::SpanBegin {
                    phase: Cow::Borrowed(phase),
                },
            );
        }
    }

    /// Close the innermost open span of `phase`.
    pub fn span_end(&self, phase: &'static str, t_virt: Option<f64>) {
        if let Some(r) = &self.inner {
            r.record(
                0,
                t_virt,
                EventKind::SpanEnd {
                    phase: Cow::Borrowed(phase),
                },
            );
        }
    }

    /// Record a payload handed to the network for rank `peer`.
    pub fn send(&self, peer: usize, bytes: u64, t_virt: Option<f64>) {
        if let Some(r) = &self.inner {
            r.record(
                0,
                t_virt,
                EventKind::Send {
                    peer: peer as u32,
                    bytes,
                },
            );
        }
    }

    /// Record a payload received from rank `peer`.
    pub fn recv(&self, peer: usize, bytes: u64, t_virt: Option<f64>) {
        if let Some(r) = &self.inner {
            r.record(
                0,
                t_virt,
                EventKind::Recv {
                    peer: peer as u32,
                    bytes,
                },
            );
        }
    }

    /// Record completion of a synchronizing collective; `t_virt` should be
    /// the clock *after* synchronization (what barriers compare).
    pub fn collective(&self, op: CollectiveOp, bytes: u64, t_virt: Option<f64>) {
        if let Some(r) = &self.inner {
            r.record(0, t_virt, EventKind::Collective { op, bytes });
        }
    }

    /// Record one retired pool task (called from worker threads).
    pub fn task(&self, worker: usize, index: usize, dur_ns: u64) {
        if let Some(r) = &self.inner {
            r.record(
                worker as u32,
                None,
                EventKind::Task {
                    index: index as u32,
                    dur_ns,
                },
            );
        }
    }

    /// Record a named quantity.
    pub fn counter(&self, name: &'static str, value: f64) {
        if let Some(r) = &self.inner {
            r.record(0, None, EventKind::Counter { name: Cow::Borrowed(name), value });
        }
    }

    /// Record entry into job epoch `epoch` after a fault (rejoin or
    /// mesh re-wire). Replayed traffic is recorded after this marker.
    pub fn rejoin(&self, epoch: u64, t_virt: Option<f64>) {
        if let Some(r) = &self.inner {
            r.record(0, t_virt, EventKind::Rejoin { epoch });
        }
    }

    /// Number of events recorded so far (0 when disabled).
    pub fn len(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |r| r.events.lock().expect("trace buffer poisoned").len())
    }

    /// True when no events have been recorded (or recording is off).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Take all recorded events out of the buffer (oldest first).
    pub fn drain(&self) -> Vec<Event> {
        self.inner.as_ref().map_or_else(Vec::new, |r| {
            std::mem::take(&mut *r.events.lock().expect("trace buffer poisoned"))
        })
    }

    /// Copy the recorded events without draining them.
    pub fn snapshot(&self) -> Vec<Event> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |r| r.events.lock().expect("trace buffer poisoned").clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let t = Trace::disabled();
        assert!(!t.is_enabled());
        t.span_begin("conv", None);
        t.send(1, 100, None);
        t.task(2, 5, 1000);
        assert!(t.is_empty());
        assert!(t.drain().is_empty());
    }

    #[test]
    fn events_come_back_in_order_with_monotonic_stamps() {
        let t = Trace::recording(3);
        t.span_begin("conv", Some(0.0));
        t.send(0, 64, Some(0.5));
        t.span_end("conv", Some(1.0));
        let evs = t.drain();
        assert_eq!(evs.len(), 3);
        assert!(evs.windows(2).all(|w| w[0].t_mono_ns <= w[1].t_mono_ns));
        assert!(evs.iter().all(|e| e.rank == 3));
        assert!(matches!(evs[0].kind, EventKind::SpanBegin { .. }));
        assert!(matches!(evs[2].kind, EventKind::SpanEnd { .. }));
        assert!(t.is_empty(), "drain must empty the buffer");
    }

    #[test]
    fn clones_share_one_buffer() {
        let t = Trace::recording(0);
        let u = t.clone();
        t.counter("a", 1.0);
        u.counter("b", 2.0);
        assert_eq!(t.len(), 2);
        assert_eq!(u.snapshot().len(), 2);
    }

    #[test]
    fn recording_is_thread_safe() {
        let t = Trace::recording(0);
        std::thread::scope(|s| {
            for w in 0..4 {
                let t = t.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        t.task(w, i, 1);
                    }
                });
            }
        });
        assert_eq!(t.len(), 400);
    }
}
