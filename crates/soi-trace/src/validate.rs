//! The conservation validator: mechanical cross-rank checks on a run's
//! merged traces.
//!
//! A [`TraceSet`] holds one event stream per rank. [`TraceSet::validate`]
//! checks the invariants any correct message-passing run must satisfy:
//!
//! 1. every event in stream *r* is tagged with rank *r*;
//! 2. each rank's virtual clock never runs backwards across its events;
//! 3. spans nest LIFO and are balanced per rank;
//! 4. all ranks execute the identical sequence of collectives (op by op);
//! 5. on every directed link *a → b*, bytes and message counts sent by
//!    *a* equal bytes and counts received by *b* (order-insensitive —
//!    only the totals must conserve);
//! 6. at every barrier, all ranks read the same virtual clock;
//! 7. all ranks record the identical sequence of rejoin epochs (empty
//!    for an undisturbed run) — a recovered job re-wires *every* rank.
//!
//! A dropped or duplicated message event, a clock that regresses, or a
//! rank that skipped a collective — i.e. a race or protocol bug in the
//! simulated network — fails one of these checks with a descriptive
//! [`TraceError`].

use crate::event::{CollectiveOp, Event, EventKind};
use std::collections::BTreeMap;
use std::fmt;
use std::io::{BufRead, Write};
use std::path::Path;

/// Virtual clocks at a barrier must agree to this absolute tolerance
/// (they are computed by the same max-fold on every rank, so in practice
/// they agree exactly; the slack only absorbs serialization roundtrips).
const BARRIER_CLOCK_TOL: f64 = 1e-9;

/// The merged per-rank event streams of one run.
#[derive(Debug, Clone, Default)]
pub struct TraceSet {
    /// `ranks[r]` is rank `r`'s event stream, in recording order.
    pub ranks: Vec<Vec<Event>>,
}

/// What a validated trace contained — the run's shape at a glance.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Number of ranks.
    pub ranks: usize,
    /// Total events across all ranks.
    pub events: usize,
    /// Point-to-point messages (send events) across all ranks.
    pub messages: u64,
    /// Point-to-point bytes across all ranks.
    pub bytes: u64,
    /// The collective sequence every rank executed.
    pub collectives: Vec<CollectiveOp>,
    /// The rejoin-epoch sequence every rank recorded (empty when the run
    /// was undisturbed).
    pub rejoins: Vec<u64>,
    /// Distinct phase names seen in spans, in order of first appearance.
    pub phases: Vec<String>,
}

/// A conservation-check failure.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// Event stream `stream` contained an event tagged with a different rank.
    RankMismatch {
        /// Index of the stream in [`TraceSet::ranks`].
        stream: usize,
        /// The stray rank tag.
        found: u32,
    },
    /// A rank's virtual clock regressed between consecutive events.
    ClockRegression {
        /// The rank.
        rank: usize,
        /// Clock before.
        from: f64,
        /// Clock after (smaller — the bug).
        to: f64,
    },
    /// A span end with no matching open span, or streams ended with spans open.
    UnbalancedSpans {
        /// The rank.
        rank: usize,
        /// The phase name involved.
        phase: String,
    },
    /// Two ranks executed different collective sequences.
    CollectiveMismatch {
        /// First divergent rank.
        rank: usize,
        /// Human-readable description of the divergence.
        detail: String,
    },
    /// Bytes or message counts did not conserve on a directed link.
    LinkImbalance {
        /// Sending rank.
        from: usize,
        /// Receiving rank.
        to: usize,
        /// (bytes, messages) recorded by the sender.
        sent: (u64, u64),
        /// (bytes, messages) recorded by the receiver.
        received: (u64, u64),
    },
    /// Virtual clocks disagreed at a barrier.
    BarrierSkew {
        /// Which barrier (0-based within the collective sequence).
        barrier: usize,
        /// The clock readings per rank.
        clocks: Vec<f64>,
    },
    /// Two ranks recorded different rejoin-epoch sequences.
    RejoinMismatch {
        /// First divergent rank.
        rank: usize,
        /// Human-readable description of the divergence.
        detail: String,
    },
    /// A trace file could not be read or parsed.
    Io(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::RankMismatch { stream, found } => write!(
                f,
                "stream {stream} contains an event tagged rank {found}"
            ),
            TraceError::ClockRegression { rank, from, to } => write!(
                f,
                "rank {rank}: virtual clock ran backwards, {from} -> {to}"
            ),
            TraceError::UnbalancedSpans { rank, phase } => write!(
                f,
                "rank {rank}: unbalanced span for phase `{phase}`"
            ),
            TraceError::CollectiveMismatch { rank, detail } => write!(
                f,
                "rank {rank} diverges from rank 0's collective sequence: {detail}"
            ),
            TraceError::LinkImbalance { from, to, sent, received } => write!(
                f,
                "link {from} -> {to}: sender recorded {} bytes / {} messages, \
                 receiver recorded {} bytes / {} messages",
                sent.0, sent.1, received.0, received.1
            ),
            TraceError::BarrierSkew { barrier, clocks } => write!(
                f,
                "barrier {barrier}: virtual clocks disagree across ranks: {clocks:?}"
            ),
            TraceError::RejoinMismatch { rank, detail } => write!(
                f,
                "rank {rank} diverges from rank 0's rejoin-epoch sequence: {detail}"
            ),
            TraceError::Io(msg) => write!(f, "trace i/o: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl TraceSet {
    /// A set with `ranks.len()` streams, one per rank.
    pub fn from_streams(ranks: Vec<Vec<Event>>) -> Self {
        Self { ranks }
    }

    /// Append every event as one JSON line to `w` (ranks interleaved in
    /// rank order — readers regroup by the `rank` field).
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        for stream in &self.ranks {
            for ev in stream {
                writeln!(w, "{}", ev.to_json_line())?;
            }
        }
        Ok(())
    }

    /// Write the whole set to the file at `path` (created/truncated).
    pub fn write_jsonl_file(&self, path: &Path) -> std::io::Result<()> {
        let f = std::fs::File::create(path)?;
        let mut w = std::io::BufWriter::new(f);
        self.write_jsonl(&mut w)?;
        w.flush()
    }

    /// Parse a JSON-lines trace, regrouping events by their `rank` field.
    /// Within a rank, file order is preserved (the writer emits each
    /// rank's events in recording order, so this reconstructs streams).
    pub fn read_jsonl<R: BufRead>(r: R) -> Result<Self, TraceError> {
        let mut ranks: Vec<Vec<Event>> = Vec::new();
        for (lineno, line) in r.lines().enumerate() {
            let line = line.map_err(|e| TraceError::Io(e.to_string()))?;
            if line.trim().is_empty() {
                continue;
            }
            let ev = Event::from_json_line(&line)
                .map_err(|e| TraceError::Io(format!("line {}: {e}", lineno + 1)))?;
            let r = ev.rank as usize;
            if ranks.len() <= r {
                ranks.resize_with(r + 1, Vec::new);
            }
            ranks[r].push(ev);
        }
        Ok(Self { ranks })
    }

    /// Read a trace file written by [`TraceSet::write_jsonl_file`].
    pub fn read_jsonl_file(path: &Path) -> Result<Self, TraceError> {
        let f = std::fs::File::open(path)
            .map_err(|e| TraceError::Io(format!("{}: {e}", path.display())))?;
        Self::read_jsonl(std::io::BufReader::new(f))
    }

    /// Run every conservation check; see the module docs for the list.
    pub fn validate(&self) -> Result<TraceSummary, TraceError> {
        // 1. rank tags.
        for (stream, evs) in self.ranks.iter().enumerate() {
            if let Some(ev) = evs.iter().find(|e| e.rank as usize != stream) {
                return Err(TraceError::RankMismatch { stream, found: ev.rank });
            }
        }

        // 2. virtual-clock monotonicity per rank.
        for (rank, evs) in self.ranks.iter().enumerate() {
            let mut last: Option<f64> = None;
            for ev in evs {
                if let Some(t) = ev.t_virt {
                    if let Some(prev) = last {
                        if t < prev {
                            return Err(TraceError::ClockRegression { rank, from: prev, to: t });
                        }
                    }
                    last = Some(t);
                }
            }
        }

        // 3. LIFO span balance per rank.
        let mut phases: Vec<String> = Vec::new();
        for (rank, evs) in self.ranks.iter().enumerate() {
            let mut stack: Vec<&str> = Vec::new();
            for ev in evs {
                match &ev.kind {
                    EventKind::SpanBegin { phase } => {
                        if !phases.iter().any(|p| p == phase.as_ref()) {
                            phases.push(phase.to_string());
                        }
                        stack.push(phase.as_ref());
                    }
                    EventKind::SpanEnd { phase } => match stack.pop() {
                        Some(open) if open == phase.as_ref() => {}
                        _ => {
                            return Err(TraceError::UnbalancedSpans {
                                rank,
                                phase: phase.to_string(),
                            })
                        }
                    },
                    _ => {}
                }
            }
            if let Some(open) = stack.pop() {
                return Err(TraceError::UnbalancedSpans { rank, phase: open.to_string() });
            }
        }

        // 4. identical collective sequence across ranks (ops only; byte
        //    totals may legitimately differ per rank for v-collectives).
        let seq_of = |evs: &[Event]| -> Vec<CollectiveOp> {
            evs.iter()
                .filter_map(|e| match e.kind {
                    EventKind::Collective { op, .. } => Some(op),
                    _ => None,
                })
                .collect()
        };
        let reference = self.ranks.first().map(|evs| seq_of(evs)).unwrap_or_default();
        for (rank, evs) in self.ranks.iter().enumerate().skip(1) {
            let seq = seq_of(evs);
            if seq != reference {
                let detail = if seq.len() != reference.len() {
                    format!("{} collectives vs {}", seq.len(), reference.len())
                } else {
                    let i = seq
                        .iter()
                        .zip(&reference)
                        .position(|(a, b)| a != b)
                        .unwrap_or(0);
                    format!(
                        "op {} is {} but rank 0 ran {}",
                        i,
                        seq[i].name(),
                        reference[i].name()
                    )
                };
                return Err(TraceError::CollectiveMismatch { rank, detail });
            }
        }

        // 5. per-directed-link conservation of bytes and message counts.
        let mut sent: BTreeMap<(usize, usize), (u64, u64)> = BTreeMap::new();
        let mut received: BTreeMap<(usize, usize), (u64, u64)> = BTreeMap::new();
        let mut messages = 0u64;
        let mut bytes = 0u64;
        for (rank, evs) in self.ranks.iter().enumerate() {
            for ev in evs {
                match ev.kind {
                    EventKind::Send { peer, bytes: b } => {
                        let e = sent.entry((rank, peer as usize)).or_insert((0, 0));
                        e.0 += b;
                        e.1 += 1;
                        messages += 1;
                        bytes += b;
                    }
                    EventKind::Recv { peer, bytes: b } => {
                        let e = received.entry((peer as usize, rank)).or_insert((0, 0));
                        e.0 += b;
                        e.1 += 1;
                    }
                    _ => {}
                }
            }
        }
        let links: Vec<(usize, usize)> =
            sent.keys().chain(received.keys()).copied().collect();
        for (from, to) in links {
            let s = sent.get(&(from, to)).copied().unwrap_or((0, 0));
            let r = received.get(&(from, to)).copied().unwrap_or((0, 0));
            if s != r {
                return Err(TraceError::LinkImbalance { from, to, sent: s, received: r });
            }
        }

        // 6. clock agreement at barriers. The k-th barrier on each rank
        //    is the k-th Barrier entry of its (already identical)
        //    collective sequence, so positional pairing is sound.
        let barrier_clocks = |evs: &[Event]| -> Vec<Option<f64>> {
            evs.iter()
                .filter_map(|e| match e.kind {
                    EventKind::Collective { op: CollectiveOp::Barrier, .. } => Some(e.t_virt),
                    _ => None,
                })
                .collect()
        };
        if self.ranks.len() > 1 {
            let per_rank: Vec<Vec<Option<f64>>> =
                self.ranks.iter().map(|evs| barrier_clocks(evs)).collect();
            let n_barriers = per_rank.first().map_or(0, Vec::len);
            for k in 0..n_barriers {
                let clocks: Vec<f64> = per_rank
                    .iter()
                    .filter_map(|bs| bs.get(k).copied().flatten())
                    .collect();
                if clocks.len() < 2 {
                    continue; // untimed traces carry no clock to compare
                }
                let lo = clocks.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = clocks.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                if hi - lo > BARRIER_CLOCK_TOL {
                    return Err(TraceError::BarrierSkew { barrier: k, clocks });
                }
            }
        }

        // 7. identical rejoin-epoch sequence across ranks. Recovery
        //    re-wires the whole mesh, so a survivor that missed a rejoin
        //    (or a respawn that recorded an extra one) is a protocol bug.
        let rejoins_of = |evs: &[Event]| -> Vec<u64> {
            evs.iter()
                .filter_map(|e| match e.kind {
                    EventKind::Rejoin { epoch } => Some(epoch),
                    _ => None,
                })
                .collect()
        };
        let rejoins = self.ranks.first().map(|evs| rejoins_of(evs)).unwrap_or_default();
        for (rank, evs) in self.ranks.iter().enumerate().skip(1) {
            let seq = rejoins_of(evs);
            if seq != rejoins {
                let detail = if seq.len() != rejoins.len() {
                    format!("{} rejoins vs {}", seq.len(), rejoins.len())
                } else {
                    let i = seq
                        .iter()
                        .zip(&rejoins)
                        .position(|(a, b)| a != b)
                        .unwrap_or(0);
                    format!("rejoin {} is epoch {} but rank 0 saw {}", i, seq[i], rejoins[i])
                };
                return Err(TraceError::RejoinMismatch { rank, detail });
            }
        }

        Ok(TraceSummary {
            ranks: self.ranks.len(),
            events: self.ranks.iter().map(Vec::len).sum(),
            messages,
            bytes,
            collectives: reference,
            rejoins,
            phases,
        })
    }
}

/// Total monotonic nanoseconds spent per phase in one rank's stream,
/// pairing each `SpanEnd` with its matching (LIFO) `SpanBegin`. Phases
/// appear in order of first completion; repeated spans accumulate.
pub fn phase_totals(events: &[Event]) -> Vec<(String, u64)> {
    let mut totals: Vec<(String, u64)> = Vec::new();
    let mut stack: Vec<(&str, u64)> = Vec::new();
    for ev in events {
        match &ev.kind {
            EventKind::SpanBegin { phase } => stack.push((phase.as_ref(), ev.t_mono_ns)),
            EventKind::SpanEnd { phase } => {
                if let Some((open, t0)) = stack.pop() {
                    if open == phase.as_ref() {
                        let dur = ev.t_mono_ns.saturating_sub(t0);
                        match totals.iter_mut().find(|(p, _)| p == open) {
                            Some((_, acc)) => *acc += dur,
                            None => totals.push((open.to_string(), dur)),
                        }
                    }
                }
            }
            _ => {}
        }
    }
    totals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Trace;
    use std::borrow::Cow;

    /// Build a well-formed 2-rank trace: a barrier, one message 0 -> 1,
    /// and a conv span on each rank.
    fn good_set() -> TraceSet {
        let streams = (0..2)
            .map(|rank| {
                let t = Trace::recording(rank);
                t.span_begin("conv", Some(0.0));
                if rank == 0 {
                    t.send(1, 4096, Some(0.1));
                } else {
                    t.recv(0, 4096, Some(0.1));
                }
                t.collective(CollectiveOp::Barrier, 0, Some(0.5));
                t.span_end("conv", Some(0.5));
                t.drain()
            })
            .collect();
        TraceSet::from_streams(streams)
    }

    #[test]
    fn good_trace_validates_and_summarizes() {
        let s = good_set().validate().expect("good trace must validate");
        assert_eq!(s.ranks, 2);
        assert_eq!(s.messages, 1);
        assert_eq!(s.bytes, 4096);
        assert_eq!(s.collectives, vec![CollectiveOp::Barrier]);
        assert_eq!(s.phases, vec!["conv".to_string()]);
    }

    #[test]
    fn dropped_recv_fails_link_conservation() {
        let mut set = good_set();
        set.ranks[1].retain(|e| !matches!(e.kind, EventKind::Recv { .. }));
        match set.validate() {
            Err(TraceError::LinkImbalance { from: 0, to: 1, .. }) => {}
            other => panic!("expected LinkImbalance, got {other:?}"),
        }
    }

    #[test]
    fn duplicated_send_fails_link_conservation() {
        let mut set = good_set();
        let mut dup = set.ranks[0]
            .iter()
            .find(|e| matches!(e.kind, EventKind::Send { .. }))
            .unwrap()
            .clone();
        dup.t_virt = None; // keep the stream clock-monotonic; only the link is wrong
        set.ranks[0].push(dup);
        assert!(matches!(set.validate(), Err(TraceError::LinkImbalance { .. })));
    }

    #[test]
    fn clock_regression_is_caught() {
        let mut set = good_set();
        // Force the last event's clock backwards.
        set.ranks[0].last_mut().unwrap().t_virt = Some(0.01);
        assert!(matches!(set.validate(), Err(TraceError::ClockRegression { rank: 0, .. })));
    }

    #[test]
    fn collective_sequence_mismatch_is_caught() {
        let mut set = good_set();
        let barrier_at = set.ranks[1]
            .iter()
            .position(|e| matches!(e.kind, EventKind::Collective { .. }))
            .unwrap();
        set.ranks[1][barrier_at].kind = EventKind::Collective {
            op: CollectiveOp::AllToAll,
            bytes: 0,
        };
        assert!(matches!(
            set.validate(),
            Err(TraceError::CollectiveMismatch { rank: 1, .. })
        ));
    }

    #[test]
    fn barrier_skew_is_caught() {
        let mut set = good_set();
        for ev in set.ranks[1].iter_mut() {
            if matches!(ev.kind, EventKind::Collective { op: CollectiveOp::Barrier, .. }) {
                ev.t_virt = Some(0.75); // rank 0 reads 0.5
            }
            // keep rank 1's stream monotonic after the bump
            if matches!(ev.kind, EventKind::SpanEnd { .. }) {
                ev.t_virt = Some(0.75);
            }
        }
        assert!(matches!(set.validate(), Err(TraceError::BarrierSkew { barrier: 0, .. })));
    }

    #[test]
    fn unbalanced_spans_are_caught() {
        let mut set = good_set();
        set.ranks[0].retain(|e| !matches!(e.kind, EventKind::SpanEnd { .. }));
        assert!(matches!(
            set.validate(),
            Err(TraceError::UnbalancedSpans { rank: 0, .. })
        ));
    }

    #[test]
    fn rejoin_sequences_must_agree() {
        let mut set = good_set();
        for evs in set.ranks.iter_mut() {
            evs.push(Event {
                rank: evs[0].rank,
                worker: 0,
                t_mono_ns: 999,
                t_virt: None,
                kind: EventKind::Rejoin { epoch: 1 },
            });
        }
        let s = set.validate().expect("agreeing rejoins must validate");
        assert_eq!(s.rejoins, vec![1]);

        // Rank 1 alone records an extra rejoin: protocol bug.
        set.ranks[1].push(Event {
            rank: 1,
            worker: 0,
            t_mono_ns: 1000,
            t_virt: None,
            kind: EventKind::Rejoin { epoch: 2 },
        });
        assert!(matches!(
            set.validate(),
            Err(TraceError::RejoinMismatch { rank: 1, .. })
        ));
    }

    #[test]
    fn jsonl_roundtrips_through_memory() {
        let set = good_set();
        let mut buf = Vec::new();
        set.write_jsonl(&mut buf).unwrap();
        let back = TraceSet::read_jsonl(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back.ranks.len(), set.ranks.len());
        for (a, b) in back.ranks.iter().zip(&set.ranks) {
            assert_eq!(a, b);
        }
        back.validate().expect("roundtripped trace must validate");
    }

    #[test]
    fn jsonl_roundtrips_through_a_file() {
        let set = good_set();
        let path = std::env::temp_dir().join(format!(
            "soi_trace_test_{}.jsonl",
            std::process::id()
        ));
        set.write_jsonl_file(&path).unwrap();
        let back = TraceSet::read_jsonl_file(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        back.validate().expect("file roundtrip must validate");
        assert_eq!(back.ranks, set.ranks);
    }

    #[test]
    fn phase_totals_pair_nested_spans() {
        let evs = vec![
            Event {
                rank: 0,
                worker: 0,
                t_mono_ns: 0,
                t_virt: None,
                kind: EventKind::SpanBegin { phase: Cow::Borrowed("outer") },
            },
            Event {
                rank: 0,
                worker: 0,
                t_mono_ns: 10,
                t_virt: None,
                kind: EventKind::SpanBegin { phase: Cow::Borrowed("inner") },
            },
            Event {
                rank: 0,
                worker: 0,
                t_mono_ns: 30,
                t_virt: None,
                kind: EventKind::SpanEnd { phase: Cow::Borrowed("inner") },
            },
            Event {
                rank: 0,
                worker: 0,
                t_mono_ns: 100,
                t_virt: None,
                kind: EventKind::SpanEnd { phase: Cow::Borrowed("outer") },
            },
        ];
        let totals = phase_totals(&evs);
        assert_eq!(
            totals,
            vec![("inner".to_string(), 20), ("outer".to_string(), 100)]
        );
    }
}
