//! Parameter search: find `(τ, σ, B)` achieving a target accuracy at a
//! given oversampling rate — the procedure §4 sketches ("a pair of (τ, σ)
//! parameters obtained in the fashion outlined in Section 4", §7.2).
//!
//! For each candidate support `B` (ascending), the search alternates two
//! monotone one-dimensional solves to a fixed point:
//!
//! 1. `σ` — largest value whose truncation error at `B` still meets the
//!    target (truncation grows with σ; larger σ means sharper spectral
//!    decay, so we take the largest feasible).
//! 2. `τ` — largest plateau whose aliasing error at `β` still meets the
//!    target (aliasing grows with τ; a wider plateau lowers κ, so we take
//!    the largest feasible).
//!
//! The first `B` whose fixed point also satisfies the κ cap wins —
//! minimizing the convolution cost `O(N'B)` subject to accuracy.

use crate::family::{GaussianWindow, TwoParamWindow, Window};
use crate::metrics::{alias_error, kappa, trunc_error};

/// A complete window design: family parameters, support, and achieved
/// quality numbers.
#[derive(Debug, Clone)]
pub struct WindowDesign<W> {
    /// The designed window.
    pub window: W,
    /// Convolution support in blocks (`B` of the paper).
    pub b: usize,
    /// Oversampling rate β the design targets.
    pub beta: f64,
    /// Achieved condition number.
    pub kappa: f64,
    /// Achieved aliasing error.
    pub alias: f64,
    /// Achieved truncation error.
    pub trunc: f64,
    /// The accuracy target the search was run with.
    pub target: f64,
}

impl<W: Window> WindowDesign<W> {
    /// Predicted relative accuracy: the paper's bound is
    /// `O(κ(ε_fft + ε_alias + ε_trunc))`; this reports
    /// `κ·(ε_alias + ε_trunc + ε_f64)` as an a-priori estimate.
    pub fn predicted_error(&self) -> f64 {
        self.kappa * (self.alias + self.trunc + f64::EPSILON)
    }
}

/// Errors from an infeasible design request.
#[derive(Debug, Clone, PartialEq)]
pub enum DesignError {
    /// No support length up to the cap met the target with an acceptable κ.
    Infeasible {
        /// The accuracy target that could not be met.
        target: f64,
        /// Oversampling rate searched at.
        beta: f64,
    },
    /// Nonsensical inputs (non-positive target, negative β, …).
    BadRequest(String),
}

impl std::fmt::Display for DesignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DesignError::Infeasible { target, beta } => write!(
                f,
                "no window design meets target {target:e} at beta {beta}"
            ),
            DesignError::BadRequest(msg) => write!(f, "bad design request: {msg}"),
        }
    }
}

impl std::error::Error for DesignError {}

/// Largest `x ∈ [lo, hi]` with `f(x) ≤ eps`, assuming `f` is increasing.
/// Returns `lo` if even `f(lo) > eps` (caller checks feasibility after).
/// Three significant digits of `x` are plenty for window parameters.
fn largest_feasible(mut f: impl FnMut(f64) -> f64, lo: f64, hi: f64, eps: f64) -> f64 {
    if f(hi) <= eps {
        return hi;
    }
    if f(lo) > eps {
        return lo;
    }
    let (mut lo, mut hi) = (lo, hi);
    for _ in 0..40 {
        if hi - lo <= 1e-3 * hi.abs() {
            break;
        }
        let mid = 0.5 * (lo + hi);
        if f(mid) <= eps {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Search the two-parameter family for the cheapest design meeting
/// `target` relative accuracy at oversampling `beta`, with condition
/// number at most `kappa_max`.
pub fn design_two_param(
    beta: f64,
    target: f64,
    kappa_max: f64,
) -> Result<WindowDesign<TwoParamWindow>, DesignError> {
    // The searches are deterministic in their inputs and invoked all over
    // the test suite and harnesses — memoize globally.
    use std::sync::Mutex;
    use std::collections::HashMap;
    type Key = (u64, u64, u64);
    type CacheVal = Result<WindowDesign<TwoParamWindow>, DesignError>;
    static CACHE: Mutex<Option<HashMap<Key, CacheVal>>> = Mutex::new(None);
    let key = (beta.to_bits(), target.to_bits(), kappa_max.to_bits());
    if let Some(hit) = CACHE
        .lock()
        .expect("design cache poisoned")
        .get_or_insert_with(HashMap::new)
        .get(&key)
    {
        return hit.clone();
    }
    let result = design_two_param_uncached(beta, target, kappa_max);
    CACHE
        .lock()
        .expect("design cache poisoned")
        .get_or_insert_with(HashMap::new)
        .insert(key, result.clone());
    result
}

fn design_two_param_uncached(
    beta: f64,
    target: f64,
    kappa_max: f64,
) -> Result<WindowDesign<TwoParamWindow>, DesignError> {
    if !(target > 0.0 && target < 1.0) {
        return Err(DesignError::BadRequest(format!(
            "target must be in (0,1), got {target}"
        )));
    }
    if beta < 0.0 || beta > 2.0 {
        return Err(DesignError::BadRequest(format!(
            "beta must be in [0,2], got {beta}"
        )));
    }
    if kappa_max < 1.0 {
        return Err(DesignError::BadRequest(format!(
            "kappa_max must be ≥ 1, got {kappa_max}"
        )));
    }
    let max_b = 160;
    let mut b = 8;
    while b <= max_b {
        // Anchor: largest σ whose truncation at this B meets the target
        // for a typical plateau width (the sinc factor from τ speeds H's
        // decay, so candidates near/above this anchor can still pass the
        // per-candidate truncation check below).
        let sigma_base = largest_feasible(
            |s| trunc_error(&TwoParamWindow::new(0.7, s), b),
            1.0,
            1e6,
            target,
        );
        // κ(σ) at fixed B is U-shaped: small σ starves the plateau
        // (aliasing forces τ down), large σ buries Ĥ(±1/2) in the sharp
        // falloff. Sample the feasible σ range and keep the κ-minimizing
        // candidate.
        let mut best: Option<WindowDesign<TwoParamWindow>> = None;
        for i in 0..12 {
            // σ_base·1.6 down to σ_base·0.35, geometrically. The τ=0.7
            // anchor underestimates what a wide plateau's sinc factor
            // allows, so candidates above σ_base are worth probing; the
            // per-candidate truncation check below rejects overshoots.
            let sigma = sigma_base * 1.6 * (0.22f64).powf(i as f64 / 11.0);
            let tau = largest_feasible(
                |t| alias_error(&TwoParamWindow::new(t, sigma), beta),
                0.02,
                1.0 + beta,
                target,
            );
            let w = TwoParamWindow::new(tau, sigma);
            let al = alias_error(&w, beta);
            let tr = trunc_error(&w, b);
            if al > target || tr > target {
                continue;
            }
            let k = kappa(&w);
            if k > kappa_max {
                continue;
            }
            if best.as_ref().is_none_or(|d| k < d.kappa) {
                best = Some(WindowDesign {
                    window: w,
                    b,
                    beta,
                    kappa: k,
                    alias: al,
                    trunc: tr,
                    target,
                });
            }
        }
        if let Some(d) = best {
            return Ok(d);
        }
        b += if b < 40 { 4 } else { 8 };
    }
    Err(DesignError::Infeasible { target, beta })
}

/// Search the one-parameter Gaussian family (§8). Often infeasible at
/// tight targets/small β — exactly the paper's point.
pub fn design_gaussian(
    beta: f64,
    target: f64,
    kappa_max: f64,
) -> Result<WindowDesign<GaussianWindow>, DesignError> {
    use std::sync::Mutex;
    use std::collections::HashMap;
    type Key = (u64, u64, u64);
    type CacheVal = Result<WindowDesign<GaussianWindow>, DesignError>;
    static CACHE: Mutex<Option<HashMap<Key, CacheVal>>> = Mutex::new(None);
    let key = (beta.to_bits(), target.to_bits(), kappa_max.to_bits());
    if let Some(hit) = CACHE
        .lock()
        .expect("design cache poisoned")
        .get_or_insert_with(HashMap::new)
        .get(&key)
    {
        return hit.clone();
    }
    let result = design_gaussian_uncached(beta, target, kappa_max);
    CACHE
        .lock()
        .expect("design cache poisoned")
        .get_or_insert_with(HashMap::new)
        .insert(key, result.clone());
    result
}

fn design_gaussian_uncached(
    beta: f64,
    target: f64,
    kappa_max: f64,
) -> Result<WindowDesign<GaussianWindow>, DesignError> {
    if !(target > 0.0 && target < 1.0) {
        return Err(DesignError::BadRequest(format!(
            "target must be in (0,1), got {target}"
        )));
    }
    // One knob: κ = e^{σ/4} grows with σ while aliasing shrinks, so the
    // best design takes the SMALLEST σ that meets the aliasing target,
    // then buys truncation with B (which is free of κ).
    let al_at = |s: f64| alias_error(&GaussianWindow::new(s), beta);
    if al_at(1e6) > target {
        return Err(DesignError::Infeasible { target, beta });
    }
    // Bisect the decreasing aliasing curve for its crossing point.
    let (mut lo, mut hi) = (0.5f64, 1e6f64);
    if al_at(lo) > target {
        for _ in 0..60 {
            if hi - lo <= 1e-3 * hi {
                break;
            }
            let mid = 0.5 * (lo + hi);
            if al_at(mid) > target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
    } else {
        hi = lo;
    }
    let sigma = hi;
    let w = GaussianWindow::new(sigma);
    let k = kappa(&w);
    if k > kappa_max {
        return Err(DesignError::Infeasible { target, beta });
    }
    let al = alias_error(&w, beta);
    let max_b = 160;
    let mut b = 8;
    while b <= max_b {
        let tr = trunc_error(&w, b);
        if tr <= target {
            return Ok(WindowDesign {
                window: w,
                b,
                beta,
                kappa: k,
                alias: al,
                trunc: tr,
                target,
            });
        }
        b += if b < 40 { 4 } else { 8 };
    }
    Err(DesignError::Infeasible { target, beta })
}

/// Search the compact-support bump family (§8): `u_max = 1/2 + β` pins
/// aliasing to exactly zero, leaving one knob — the plateau width τ —
/// trading κ (wants τ large) against the dual's decay rate, i.e. B
/// (wants τ small, a wide transition band).
pub fn design_compact(
    beta: f64,
    target: f64,
    kappa_max: f64,
) -> Result<WindowDesign<crate::family::CompactBumpWindow>, DesignError> {
    use crate::family::CompactBumpWindow;
    use std::sync::Mutex;
    use std::collections::HashMap;
    type Key = (u64, u64, u64);
    type CacheVal = Result<WindowDesign<CompactBumpWindow>, DesignError>;
    static CACHE: Mutex<Option<HashMap<Key, CacheVal>>> = Mutex::new(None);
    let key = (beta.to_bits(), target.to_bits(), kappa_max.to_bits());
    if let Some(hit) = CACHE
        .lock()
        .expect("design cache poisoned")
        .get_or_insert_with(HashMap::new)
        .get(&key)
    {
        return hit.clone();
    }
    let result = design_compact_uncached(beta, target, kappa_max);
    CACHE
        .lock()
        .expect("design cache poisoned")
        .get_or_insert_with(HashMap::new)
        .insert(key, result.clone());
    result
}

fn design_compact_uncached(
    beta: f64,
    target: f64,
    kappa_max: f64,
) -> Result<WindowDesign<crate::family::CompactBumpWindow>, DesignError> {
    use crate::family::CompactBumpWindow;
    if !(target > 0.0 && target < 1.0) {
        return Err(DesignError::BadRequest(format!(
            "target must be in (0,1), got {target}"
        )));
    }
    if beta <= 0.0 {
        return Err(DesignError::BadRequest(
            "compact window needs beta > 0 (its support must exceed the passband)".into(),
        ));
    }
    let u_max = 0.5 + beta;
    let mut b = 8;
    while b <= 160 {
        let mut best: Option<WindowDesign<CompactBumpWindow>> = None;
        for i in [1usize, 2, 3, 5, 7] {
            let tau = 2.0 * u_max * i as f64 / 10.0; // plateau 10%..70% of support
            let w = CompactBumpWindow::new(tau, u_max);
            let tr = trunc_error(&w, b);
            if tr > target {
                continue;
            }
            let k = kappa(&w);
            if k > kappa_max {
                continue;
            }
            if best.as_ref().is_none_or(|d| k < d.kappa) {
                best = Some(WindowDesign {
                    window: w,
                    b,
                    beta,
                    kappa: k,
                    alias: 0.0,
                    trunc: tr,
                    target,
                });
            }
        }
        if let Some(d) = best {
            return Ok(d);
        }
        b += if b < 40 { 8 } else { 16 };
    }
    Err(DesignError::Infeasible { target, beta })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_design_has_zero_aliasing_by_construction() {
        let d = design_compact(0.25, 1e-6, 1000.0).expect("feasible");
        assert_eq!(d.alias, 0.0);
        assert!(d.trunc <= 1e-6);
        assert!(d.kappa <= 1000.0);
        assert_eq!(d.window.u_max, 0.75);
    }

    #[test]
    fn compact_needs_bigger_b_than_two_param() {
        // C∞-but-not-analytic decay (≈e^{−c√t}) loses decisively to the
        // Gaussian-smoothed family on support length — the §8
        // locality/decay tradeoff: zero aliasing is paid for in B.
        let compact = design_compact(0.25, 1e-6, 1000.0).unwrap();
        let smooth = design_two_param(0.25, 1e-6, 1000.0).unwrap();
        assert!(
            compact.b > 2 * smooth.b,
            "compact B {} vs two-param B {}",
            compact.b,
            smooth.b
        );
    }

    #[test]
    fn compact_rejects_zero_beta() {
        assert!(matches!(
            design_compact(0.0, 1e-8, 1000.0),
            Err(DesignError::BadRequest(_))
        ));
    }

    #[test]
    fn full_accuracy_design_at_quarter_oversampling() {
        // The paper's headline operating point: β = 1/4, ε ≈ roundoff,
        // B = 72. Our search should land in the same neighbourhood.
        let d = design_two_param(0.25, 1e-15, 1000.0).expect("feasible");
        assert!(
            (48..=96).contains(&d.b),
            "B = {} not near the paper's 72",
            d.b
        );
        assert!(d.kappa <= 1000.0);
        assert!(d.alias <= 1e-15);
        assert!(d.trunc <= 1e-15);
    }

    #[test]
    fn relaxed_accuracy_needs_smaller_b() {
        let full = design_two_param(0.25, 1e-15, 1000.0).unwrap();
        let ten_digits = design_two_param(0.25, 1e-10, 1000.0).unwrap();
        let six_digits = design_two_param(0.25, 1e-6, 1000.0).unwrap();
        assert!(
            ten_digits.b < full.b,
            "10-digit B {} !< full B {}",
            ten_digits.b,
            full.b
        );
        assert!(six_digits.b <= ten_digits.b);
    }

    #[test]
    fn larger_beta_needs_smaller_b() {
        let quarter = design_two_param(0.25, 1e-12, 1000.0).unwrap();
        let half = design_two_param(0.5, 1e-12, 1000.0).unwrap();
        assert!(half.b <= quarter.b, "{} vs {}", half.b, quarter.b);
    }

    #[test]
    fn gaussian_family_caps_out_as_the_paper_claims() {
        // §8: "the accuracy will be limited to 10 digits at best if β is
        // kept at 1/4" for the one-parameter Gaussian. The single knob σ
        // must fight for aliasing (wants σ large) and conditioning (wants
        // σ small, since κ = e^{σ/4}); the balance point sits near 10
        // digits: reaching ~1e-10 aliasing costs κ ≈ 3·10⁴, whose
        // κ·ε_f64 error floor is itself ≈ 1e-11.
        let full = design_gaussian(0.25, 1e-14, 1000.0);
        assert!(full.is_err(), "Gaussian should not reach 14 digits at β=1/4");
        // Even a generous κ budget cannot rescue full accuracy: meeting
        // 1e-14 aliasing costs κ near 10⁶, whose κ·ε_f64 floor alone is
        // ~10⁻¹⁰ — so "14 digits" is unreachable end-to-end either way.
        match design_gaussian(0.25, 1e-14, 1e6) {
            Err(_) => {}
            Ok(d) => assert!(
                d.kappa * f64::EPSILON > 1e-12,
                "a κ = {:.1e} design would actually deliver 14 digits",
                d.kappa
            ),
        }
        // ~10 digits is reachable, but only by paying a conditioning
        // penalty orders of magnitude beyond the two-parameter family's.
        let ten = design_gaussian(0.25, 1e-10, 1e6).expect("10 digits feasible");
        assert!(
            ten.kappa > 1e3,
            "Gaussian κ at 10 digits should be huge, got {:.1e}",
            ten.kappa
        );
        // The two-parameter family reaches the same target with a κ two
        // orders of magnitude smaller (κ ≤ 100 is routinely feasible).
        let two = design_two_param(0.25, 1e-10, 100.0).expect("two-param 10 digits");
        assert!(
            ten.kappa > 10.0 * two.kappa,
            "conditioning gap: gaussian {:.1e} vs two-param {:.1e}",
            ten.kappa,
            two.kappa
        );
        // But at β = 1 full accuracy becomes possible with moderate κ
        // (§8: "would require β be set to 1").
        let beta1 = design_gaussian(1.0, 1e-14, 1000.0);
        assert!(beta1.is_ok(), "Gaussian at β=1 should reach full accuracy");
    }

    #[test]
    fn bad_requests_rejected() {
        assert!(matches!(
            design_two_param(0.25, 0.0, 1000.0),
            Err(DesignError::BadRequest(_))
        ));
        assert!(matches!(
            design_two_param(-0.1, 1e-10, 1000.0),
            Err(DesignError::BadRequest(_))
        ));
        assert!(matches!(
            design_two_param(0.25, 1e-10, 0.5),
            Err(DesignError::BadRequest(_))
        ));
    }

    #[test]
    fn predicted_error_is_kappa_scaled() {
        let d = design_two_param(0.25, 1e-12, 1000.0).unwrap();
        assert!(d.predicted_error() >= d.kappa * f64::EPSILON);
        assert!(d.predicted_error() < 1e-8);
    }

    #[test]
    fn display_of_errors() {
        let e = DesignError::Infeasible {
            target: 1e-20,
            beta: 0.25,
        };
        assert!(e.to_string().contains("1e-20"));
    }
}
