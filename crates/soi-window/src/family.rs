//! The window families: their frequency-domain reference shape `Ĥ(u)` and
//! time-domain dual `H(t)`.

use soi_num::special::{erfc, gaussian, sinc, SQRT_PI};

/// A reference window pair `(Ĥ, H)` normalized to the paper's convention:
/// `Ĥ` is (approximately) a unit plateau over `[−1/2, 1/2]` decaying
/// beyond, and `H(t) = ∫ Ĥ(u) e^{2πiut} du` is its (real, even) dual.
pub trait Window: Send + Sync + std::fmt::Debug {
    /// Frequency-domain reference window `Ĥ(u)`.
    fn h_hat(&self, u: f64) -> f64;
    /// Time-domain dual `H(t)` (inverse Fourier transform of `Ĥ`).
    fn h_time(&self, t: f64) -> f64;
    /// Short human-readable family name.
    fn name(&self) -> &'static str;
}

/// The paper's two-parameter `(τ, σ)` reference window (Eq. 2): a width-τ
/// rectangle convolved with a Gaussian `exp(−σu²)`,
///
/// ```text
/// Ĥ(u) = (1/τ) ∫_{−τ/2}^{τ/2} exp(−σ(u−t)²) dt
///      = (√π / (2τ√σ)) · [erf(√σ(τ/2−u)) + erf(√σ(τ/2+u))]
/// H(t) = sinc(τt) · √(π/σ) · exp(−π²t²/σ)
/// ```
///
/// (footnote 5: "Ĥ in terms of differences of two erfc functions and H in
/// terms of product of a sinc with a Gaussian").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoParamWindow {
    /// Rectangle (plateau) width τ.
    pub tau: f64,
    /// Gaussian sharpness σ (larger = sharper spectral falloff, slower
    /// time decay).
    pub sigma: f64,
}

impl TwoParamWindow {
    /// Construct; panics on non-positive parameters.
    pub fn new(tau: f64, sigma: f64) -> Self {
        assert!(tau > 0.0 && sigma > 0.0, "window parameters must be positive");
        Self { tau, sigma }
    }
}

impl Window for TwoParamWindow {
    fn h_hat(&self, u: f64) -> f64 {
        // Footnote 5: "Ĥ in terms of differences of two erfc functions".
        // erf(√σ(τ/2−u)) + erf(√σ(τ/2+u)) = erfc(√σ(u−τ/2)) − erfc(√σ(u+τ/2));
        // the erfc form keeps full *relative* accuracy in the tails, where
        // the erf form cancels catastrophically (this is what the window
        // quality metrics integrate).
        let rs = self.sigma.sqrt();
        let a = erfc(rs * (u - self.tau / 2.0));
        let b = erfc(rs * (u + self.tau / 2.0));
        SQRT_PI / (2.0 * self.tau * rs) * (a - b)
    }

    fn h_time(&self, t: f64) -> f64 {
        let pi = core::f64::consts::PI;
        sinc(self.tau * t) * (pi / self.sigma).sqrt() * gaussian(t, pi * pi / self.sigma)
    }

    fn name(&self) -> &'static str {
        "two-param(rect*gauss)"
    }
}

/// The one-parameter Gaussian window of §8: `Ĥ(u) = exp(−σ_u·u²)` with the
/// self-dual time form. The paper notes this family cannot exceed ≈10
/// digits at β = 1/4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianWindow {
    /// Spectral sharpness σ_u in `Ĥ(u) = exp(−σ_u u²)`.
    pub sigma: f64,
}

impl GaussianWindow {
    /// Construct; panics on non-positive σ.
    pub fn new(sigma: f64) -> Self {
        assert!(sigma > 0.0, "sigma must be positive");
        Self { sigma }
    }
}

impl Window for GaussianWindow {
    fn h_hat(&self, u: f64) -> f64 {
        gaussian(u, self.sigma)
    }

    fn h_time(&self, t: f64) -> f64 {
        // IFT of exp(−σu²) is √(π/σ)·exp(−π²t²/σ).
        let pi = core::f64::consts::PI;
        (pi / self.sigma).sqrt() * gaussian(t, pi * pi / self.sigma)
    }

    fn name(&self) -> &'static str {
        "gaussian"
    }
}

/// A compactly-supported window (§8: "Another kind of window functions ŵ,
/// those with compact support (cf. [7]), can eliminate aliasing error
/// completely … Theoretically, our DFT factorizations can be made exact
/// with these window functions").
///
/// `Ĥ` is 1 on the plateau `[−τ/2, τ/2]`, **exactly zero** outside
/// `[−u_max, u_max]`, and glued in between by the standard C^∞ bump
/// partition `f(1−s)/(f(s)+f(1−s))`, `f(x) = e^(−1/x)`. Being C^∞ but not
/// analytic, its time dual `H` decays faster than any polynomial yet
/// slower than the Gaussian-smoothed family — the locality/decay tradeoff
/// §8 calls "still a lively subject". With `u_max = 1/2 + β` the aliasing
/// error is *identically zero*; only truncation and κ remain.
///
/// `H(t)` has no closed form; it is evaluated as the cosine transform
/// `2∫₀^{u_max} Ĥ(u)·cos(2πut) du` by fixed-order Simpson with
/// oscillation-aware resolution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactBumpWindow {
    /// Flat-plateau width τ (`Ĥ = 1` on `[−τ/2, τ/2]`).
    pub tau: f64,
    /// Support edge: `Ĥ ≡ 0` for `|u| ≥ u_max`.
    pub u_max: f64,
}

impl CompactBumpWindow {
    /// Construct; panics unless `0 < τ/2 < u_max`.
    pub fn new(tau: f64, u_max: f64) -> Self {
        assert!(
            tau > 0.0 && u_max > tau / 2.0,
            "need 0 < tau/2 < u_max, got tau={tau}, u_max={u_max}"
        );
        Self { tau, u_max }
    }

    /// The window sized for oversampling rate β (support exactly fills the
    /// guard band, killing aliasing).
    pub fn for_beta(tau: f64, beta: f64) -> Self {
        Self::new(tau, 0.5 + beta)
    }
}

/// The C^∞ transition `f(1−s)/(f(s)+f(1−s))`, 1 at s=0, 0 at s=1.
fn bump_step(s: f64) -> f64 {
    if s <= 0.0 {
        return 1.0;
    }
    if s >= 1.0 {
        return 0.0;
    }
    let f = |x: f64| (-1.0 / x).exp();
    f(1.0 - s) / (f(s) + f(1.0 - s))
}

impl Window for CompactBumpWindow {
    fn h_hat(&self, u: f64) -> f64 {
        let a = u.abs();
        if a <= self.tau / 2.0 {
            1.0
        } else if a >= self.u_max {
            0.0
        } else {
            bump_step((a - self.tau / 2.0) / (self.u_max - self.tau / 2.0))
        }
    }

    fn h_time(&self, t: f64) -> f64 {
        // Even Ĥ ⇒ real cosine transform; Filon quadrature keeps the
        // error O(h⁴·Ĥ⁗) regardless of the oscillation rate 2πt.
        2.0 * soi_num::quad::filon_cos(
            |u| self.h_hat(u),
            0.0,
            self.u_max,
            2.0 * core::f64::consts::PI * t,
            256,
        )
    }

    fn name(&self) -> &'static str {
        "compact-bump"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_num::quad::integrate;

    #[test]
    fn two_param_closed_form_matches_defining_integral() {
        // Ĥ(u) = (1/τ)∫_{−τ/2}^{τ/2} e^{−σ(u−t)²} dt, checked by quadrature.
        let w = TwoParamWindow::new(0.8, 120.0);
        for u in [-0.6, -0.5, -0.25, 0.0, 0.3, 0.5, 0.55, 0.75] {
            let direct = integrate(
                |t| (-w.sigma * (u - t) * (u - t)).exp(),
                -w.tau / 2.0,
                w.tau / 2.0,
                1e-14,
            )
            .value
                / w.tau;
            let closed = w.h_hat(u);
            assert!(
                (direct - closed).abs() < 1e-12,
                "u={u}: {direct} vs {closed}"
            );
        }
    }

    #[test]
    fn h_hat_is_even_and_positive_near_passband() {
        let w = TwoParamWindow::new(0.85, 300.0);
        for u in [0.0, 0.1, 0.25, 0.5, 0.7] {
            assert!((w.h_hat(u) - w.h_hat(-u)).abs() < 1e-15);
            assert!(w.h_hat(u) > 0.0);
        }
    }

    #[test]
    fn h_time_is_even_and_peaks_at_zero() {
        let w = TwoParamWindow::new(0.85, 300.0);
        for t in [0.5, 1.0, 3.0, 10.0] {
            assert!((w.h_time(t) - w.h_time(-t)).abs() < 1e-15);
            assert!(w.h_time(0.0).abs() >= w.h_time(t).abs());
        }
    }

    #[test]
    fn fourier_pair_consistency() {
        // H(t) must equal ∫ Ĥ(u) e^{2πiut} du (real part; imaginary is 0
        // by evenness). Quadrature over the effective support of Ĥ.
        let w = TwoParamWindow::new(0.7, 80.0);
        for t in [0.0, 0.4, 1.0, 2.5] {
            let direct = integrate(
                |u| w.h_hat(u) * (2.0 * core::f64::consts::PI * u * t).cos(),
                -3.0,
                3.0,
                1e-13,
            )
            .value;
            let closed = w.h_time(t);
            assert!(
                (direct - closed).abs() < 1e-9,
                "t={t}: {direct} vs {closed}"
            );
        }
    }

    #[test]
    fn gaussian_fourier_pair_consistency() {
        let w = GaussianWindow::new(60.0);
        for t in [0.0, 0.3, 1.2] {
            let direct = integrate(
                |u| w.h_hat(u) * (2.0 * core::f64::consts::PI * u * t).cos(),
                -4.0,
                4.0,
                1e-13,
            )
            .value;
            assert!((direct - w.h_time(t)).abs() < 1e-9, "t={t}");
        }
    }

    #[test]
    fn sharper_sigma_decays_faster_in_frequency() {
        let sharp = TwoParamWindow::new(0.8, 800.0);
        let blunt = TwoParamWindow::new(0.8, 80.0);
        // Outside the plateau the sharper window must be far smaller.
        assert!(sharp.h_hat(0.9) < blunt.h_hat(0.9) * 1e-2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_params() {
        let _ = TwoParamWindow::new(-1.0, 10.0);
    }

    #[test]
    fn compact_window_is_exactly_zero_outside_support() {
        let w = CompactBumpWindow::for_beta(0.6, 0.25);
        assert_eq!(w.u_max, 0.75);
        assert_eq!(w.h_hat(0.75), 0.0);
        assert_eq!(w.h_hat(1.0), 0.0);
        assert_eq!(w.h_hat(-5.0), 0.0);
        assert_eq!(w.h_hat(0.0), 1.0);
        assert_eq!(w.h_hat(0.29), 1.0, "inside the plateau");
        let mid = w.h_hat(0.5);
        assert!(mid > 0.0 && mid < 1.0, "transition value {mid}");
    }

    #[test]
    fn compact_window_transition_is_smooth_and_monotone() {
        let w = CompactBumpWindow::new(0.5, 0.75);
        let mut prev = 1.0;
        for i in 0..=100 {
            let u = 0.25 + 0.5 * i as f64 / 100.0;
            let v = w.h_hat(u);
            assert!(v <= prev + 1e-12, "not monotone at u={u}");
            prev = v;
        }
    }

    #[test]
    fn compact_h_time_is_a_genuine_fourier_dual() {
        // Spot-check the numerical cosine transform against independent
        // adaptive quadrature.
        let w = CompactBumpWindow::new(0.6, 0.75);
        for t in [0.0, 0.7, 2.3, 9.0] {
            let direct = integrate(
                |u| w.h_hat(u) * (2.0 * core::f64::consts::PI * u * t).cos(),
                -0.75,
                0.75,
                1e-12,
            )
            .value;
            let got = w.h_time(t);
            assert!((got - direct).abs() < 1e-9, "t={t}: {got} vs {direct}");
        }
    }

    #[test]
    fn compact_h_time_decays_superpolynomially() {
        // C^∞ compact support ⇒ decay faster than any polynomial: compare
        // |H| at t and 2t against a cubic-decay yardstick.
        let w = CompactBumpWindow::new(0.6, 0.75);
        let h10: f64 = (10..14).map(|t| w.h_time(t as f64).abs()).sum();
        let h30: f64 = (30..34).map(|t| w.h_time(t as f64).abs()).sum();
        assert!(h30 < h10 / 27.0, "h10={h10:e} h30={h30:e} (slower than t^-3)");
    }

    #[test]
    fn compact_window_kills_aliasing_identically() {
        let w = CompactBumpWindow::for_beta(0.6, 0.25);
        let alias = crate::metrics::alias_error(&w, 0.25);
        assert_eq!(alias, 0.0, "compact support must zero the aliasing error");
    }
}
