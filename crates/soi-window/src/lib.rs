//! Window-function design machinery — §4 and §8 of the paper.
//!
//! The SOI factorization is a *family* parameterized by a window pair
//! `(w, ŵ)`; everything about its accuracy is controlled by three numbers
//! derived from the window:
//!
//! * `κ` — the condition number `max|Ĥ|/min|Ĥ|` over `[−1/2, 1/2]`
//!   (demodulation divides by `ŵ`, so small values amplify error),
//! * `ε^(alias)` — the spectral mass of `Ĥ` outside `|u| < 1/2 + β`
//!   relative to the passband (out-of-segment frequencies folded in by
//!   periodization),
//! * `ε^(trunc)` — the mass of the time-domain `H` outside `|t| ≤ B/2`
//!   (the convolution keeps only `B` taps per lane).
//!
//! The total SOI error is `O(κ·(ε_fft + ε_alias + ε_trunc))`.
//!
//! Two families are implemented:
//!
//! * [`TwoParamWindow`] — the paper's Eq. (2): a rectangle smoothed by a
//!   Gaussian, `Ĥ` in closed form via `erf`, `H = sinc·Gaussian`. This is
//!   the family behind every measured result in the paper.
//! * [`GaussianWindow`] — the one-parameter Gaussian of §8, which the
//!   paper says caps accuracy near 10 digits at β = 1/4 (our
//!   `ablation_window` harness reproduces this).
//!
//! [`design::design_two_param`] searches `(τ, σ, B)` for a target accuracy
//! at a given oversampling rate; [`presets`] names the operating points
//! used by the figure harnesses (B = 72 full accuracy, and the relaxed
//! points of Fig 7).

pub mod design;
pub mod family;
pub mod metrics;
pub mod presets;

pub use design::{design_compact, design_gaussian, design_two_param, WindowDesign};
pub use family::{CompactBumpWindow, GaussianWindow, TwoParamWindow, Window};
pub use presets::AccuracyPreset;
