//! Window quality metrics: κ, ε^(alias), ε^(trunc) — the three quantities
//! the paper's error bound is built from (§4).

use crate::family::Window;
use soi_num::quad::{composite_simpson, integrate_decaying_tail};

/// Condition number `κ = max|Ĥ(u)| / min|Ĥ(u)|` over `u ∈ [−1/2, 1/2]`
/// (§4 condition (b): should be "moderate (for example, less than 10³)").
///
/// Evaluated by dense sampling plus the endpoints; our window families are
/// even and unimodal, so this is exact to sampling resolution. Returns
/// `+∞` when `|Ĥ|` underflows inside the passband (such a window is
/// unusable — demodulation would divide by zero — and the design search
/// rejects it through the κ cap).
pub fn kappa(w: &dyn Window) -> f64 {
    let mut lo = f64::INFINITY;
    let mut hi = 0.0f64;
    let samples = 2048;
    for i in 0..=samples {
        let u = -0.5 + i as f64 / samples as f64;
        let v = w.h_hat(u).abs();
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if lo <= 0.0 {
        return f64::INFINITY;
    }
    hi / lo
}

/// Aliasing error (§4 condition (c)):
/// `ε^(alias) = ∫_{|u| ≥ 1/2+β} |Ĥ(u)| du / ∫_{−1/2}^{1/2} |Ĥ(u)| du`.
pub fn alias_error(w: &dyn Window, beta: f64) -> f64 {
    assert!(beta >= 0.0, "oversampling rate must be non-negative");
    let denom = composite_simpson(|u| w.h_hat(u).abs(), -0.5, 0.5, 512);
    debug_assert!(denom > 0.0);
    // Even window: tail mass = 2 × the positive-side tail.
    let tail = integrate_decaying_tail(|u| w.h_hat(u).abs(), 0.5 + beta, 0.25, 1e-25).value;
    2.0 * tail / denom
}

/// Truncation error for support length `B` (§4):
/// `∫_{|t| ≥ B/2} |H(t)| dt / ∫_{−∞}^{∞} |H(t)| dt`.
pub fn trunc_error(w: &dyn Window, b: usize) -> f64 {
    assert!(b >= 2, "support must be at least 2 taps");
    let half = b as f64 / 2.0;
    // |H| oscillates with ~unit period (the sinc); 16 points per unit
    // resolves it fully for composite Simpson.
    let head = composite_simpson(|t| w.h_time(t).abs(), 0.0, half, (b * 16).max(256));
    let tail = integrate_decaying_tail(|t| w.h_time(t).abs(), half, 1.0, 1e-25).value;
    tail / (head + tail)
}

/// Smallest even `B` whose truncation error is ≤ `eps` (paper: "determine
/// a corresponding integer B"), capped at `max_b`.
pub fn min_b_for(w: &dyn Window, eps: f64, max_b: usize) -> Option<usize> {
    let mut b = 4;
    while b <= max_b {
        if trunc_error(w, b) <= eps {
            return Some(b);
        }
        b += 2;
    }
    None
}

/// All three metrics at once.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowQuality {
    /// Condition number over the passband.
    pub kappa: f64,
    /// Relative spectral leakage beyond `1/2 + β`.
    pub alias: f64,
    /// Relative time-domain mass beyond `B/2`.
    pub trunc: f64,
}

/// Evaluate κ, ε^(alias), ε^(trunc) for a window at `(β, B)`.
pub fn quality(w: &dyn Window, beta: f64, b: usize) -> WindowQuality {
    WindowQuality {
        kappa: kappa(w),
        alias: alias_error(w, beta),
        trunc: trunc_error(w, b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::{GaussianWindow, TwoParamWindow};

    #[test]
    fn kappa_of_wide_plateau_is_small() {
        // τ close to the full passband width + sharp Gaussian → κ near 1..20.
        let w = TwoParamWindow::new(0.95, 2000.0);
        let k = kappa(&w);
        assert!(k < 50.0, "kappa = {k}");
        assert!(k >= 1.0);
    }

    #[test]
    fn kappa_grows_as_plateau_narrows() {
        let wide = TwoParamWindow::new(0.9, 400.0);
        let narrow = TwoParamWindow::new(0.4, 400.0);
        assert!(kappa(&narrow) > kappa(&wide));
    }

    #[test]
    fn alias_error_decreases_with_beta() {
        let w = TwoParamWindow::new(0.8, 300.0);
        let e0 = alias_error(&w, 0.0);
        let e1 = alias_error(&w, 0.25);
        let e2 = alias_error(&w, 0.5);
        assert!(e0 > e1 && e1 > e2, "{e0} {e1} {e2}");
    }

    #[test]
    fn alias_error_small_for_sharp_window_at_quarter_oversampling() {
        // A production-grade design point should reach near roundoff.
        let w = TwoParamWindow::new(0.85, 350.0);
        let e = alias_error(&w, 0.25);
        assert!(e < 1e-10, "alias = {e:e}");
    }

    #[test]
    fn trunc_error_decreases_with_b() {
        let w = TwoParamWindow::new(0.85, 350.0);
        let e8 = trunc_error(&w, 8);
        let e24 = trunc_error(&w, 24);
        let e72 = trunc_error(&w, 72);
        assert!(e8 > e24 && e24 > e72, "{e8:e} {e24:e} {e72:e}");
        assert!(e72 < 1e-14, "B=72 should be near roundoff, got {e72:e}");
    }

    #[test]
    fn min_b_matches_direct_scan() {
        let w = TwoParamWindow::new(0.85, 350.0);
        let b = min_b_for(&w, 1e-12, 200).expect("feasible");
        assert!(trunc_error(&w, b) <= 1e-12);
        assert!(b == 4 || trunc_error(&w, b - 2) > 1e-12);
    }

    #[test]
    fn min_b_returns_none_when_infeasible() {
        // A very slow-decaying window cannot reach 1e-30 with B ≤ 8.
        let w = TwoParamWindow::new(0.85, 5000.0);
        assert!(min_b_for(&w, 1e-30, 8).is_none());
    }

    #[test]
    fn gaussian_window_metrics_behave() {
        let w = GaussianWindow::new(60.0);
        assert!(kappa(&w) > 1.0);
        assert!(alias_error(&w, 0.25) < alias_error(&w, 0.0));
        assert!(trunc_error(&w, 40) < trunc_error(&w, 10));
    }

    #[test]
    fn quality_bundles_consistently() {
        let w = TwoParamWindow::new(0.85, 350.0);
        let q = quality(&w, 0.25, 72);
        assert_eq!(q.kappa, kappa(&w));
        assert_eq!(q.alias, alias_error(&w, 0.25));
        assert_eq!(q.trunc, trunc_error(&w, 72));
    }
}
