//! Named accuracy operating points.
//!
//! §7.2 runs SOI at full accuracy (SNR ≈ 290 dB, B = 72); Fig 7 then
//! trades accuracy for speed by relaxing the target, shrinking B. These
//! presets give the figure harnesses one switch for the whole sweep.

use crate::design::{design_two_param, DesignError, WindowDesign};
use crate::family::TwoParamWindow;

/// Accuracy operating points used in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccuracyPreset {
    /// ≈14.5 digits / 290 dB — the paper's full-accuracy SOI (B = 72).
    Full,
    /// ≈13 digits / 260 dB.
    Digits13,
    /// ≈12 digits / 240 dB.
    Digits12,
    /// ≈11 digits / 220 dB.
    Digits11,
    /// ≈10 digits / 200 dB — the point where Fig 7 shows SOI beating MKL
    /// more than twofold.
    Digits10,
}

impl AccuracyPreset {
    /// All presets, tightest first (the Fig 7 sweep order).
    pub const ALL: [AccuracyPreset; 5] = [
        AccuracyPreset::Full,
        AccuracyPreset::Digits13,
        AccuracyPreset::Digits12,
        AccuracyPreset::Digits11,
        AccuracyPreset::Digits10,
    ];

    /// Relative-error target ε for the window design.
    pub fn target(self) -> f64 {
        match self {
            AccuracyPreset::Full => 1e-15,
            AccuracyPreset::Digits13 => 1e-13,
            AccuracyPreset::Digits12 => 1e-12,
            AccuracyPreset::Digits11 => 1e-11,
            AccuracyPreset::Digits10 => 1e-10,
        }
    }

    /// Nominal accuracy in decimal digits.
    pub fn digits(self) -> f64 {
        -self.target().log10()
    }

    /// Nominal SNR in dB (digits × 20).
    pub fn nominal_snr_db(self) -> f64 {
        self.digits() * 20.0
    }

    /// Display label matching the figure axes.
    pub fn label(self) -> &'static str {
        match self {
            AccuracyPreset::Full => "full (~14.5 digits)",
            AccuracyPreset::Digits13 => "13 digits",
            AccuracyPreset::Digits12 => "12 digits",
            AccuracyPreset::Digits11 => "11 digits",
            AccuracyPreset::Digits10 => "10 digits",
        }
    }

    /// Run the designer for this preset at oversampling `beta`.
    ///
    /// The κ cap is tighter than the paper's "moderate (for example, less
    /// than 10³)" ceiling: κ multiplies every error term, so keeping it
    /// below 10² costs a slightly larger B but keeps each preset's
    /// *end-to-end* accuracy at its nominal digit count.
    pub fn design(self, beta: f64) -> Result<WindowDesign<TwoParamWindow>, DesignError> {
        design_two_param(beta, self.target(), 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_design_successfully_at_quarter_beta() {
        for p in AccuracyPreset::ALL {
            let d = p.design(0.25).unwrap_or_else(|e| panic!("{p:?}: {e}"));
            assert!(d.b >= 8, "{p:?}");
            assert!(d.kappa <= 1000.0, "{p:?}");
        }
    }

    #[test]
    fn b_decreases_monotonically_across_the_sweep() {
        let bs: Vec<usize> = AccuracyPreset::ALL
            .iter()
            .map(|p| p.design(0.25).unwrap().b)
            .collect();
        for w in bs.windows(2) {
            assert!(w[0] >= w[1], "B sequence not monotone: {bs:?}");
        }
        // Fig 7's performance gain comes from exactly this shrinkage.
        assert!(bs[0] > bs[4], "full B {} should exceed 10-digit B {}", bs[0], bs[4]);
    }

    #[test]
    fn digit_and_db_labels_consistent() {
        assert_eq!(AccuracyPreset::Digits10.digits(), 10.0);
        assert_eq!(AccuracyPreset::Digits10.nominal_snr_db(), 200.0);
        assert_eq!(AccuracyPreset::Full.digits(), 15.0);
        assert!(AccuracyPreset::Full.label().contains("full"));
    }
}
