//! Property tests on the window families and their quality metrics.

use soi_testkit::{check, PropConfig};
use soi_window::family::{CompactBumpWindow, GaussianWindow, TwoParamWindow, Window};
use soi_window::metrics::{alias_error, kappa, trunc_error};

#[test]
fn two_param_h_hat_is_even_and_positive() {
    check(
        "two_param_h_hat_is_even_and_positive",
        PropConfig::cases(24),
        |rng| {
            let tau = rng.f64_in(0.2..1.0);
            let sigma = rng.f64_in(20.0..800.0);
            let u = rng.f64_in(-2.0..2.0);
            let w = TwoParamWindow::new(tau, sigma);
            assert!((w.h_hat(u) - w.h_hat(-u)).abs() <= 1e-14 * (1.0 + w.h_hat(u).abs()));
            assert!(
                w.h_hat(u) >= 0.0,
                "Ĥ must be non-negative (it is an integral of a Gaussian)"
            );
        },
    );
}

#[test]
fn two_param_h_time_peaks_at_origin() {
    check(
        "two_param_h_time_peaks_at_origin",
        PropConfig::cases(24),
        |rng| {
            let tau = rng.f64_in(0.2..1.0);
            let sigma = rng.f64_in(20.0..800.0);
            let t = rng.f64_in(0.05..30.0);
            let w = TwoParamWindow::new(tau, sigma);
            assert!(w.h_time(0.0).abs() >= w.h_time(t).abs());
        },
    );
}

#[test]
fn kappa_at_least_one() {
    check("kappa_at_least_one", PropConfig::cases(24), |rng| {
        let tau = rng.f64_in(0.3..1.0);
        let sigma = rng.f64_in(30.0..500.0);
        let w = TwoParamWindow::new(tau, sigma);
        assert!(kappa(&w) >= 1.0);
    });
}

#[test]
fn alias_monotone_in_beta() {
    check("alias_monotone_in_beta", PropConfig::cases(24), |rng| {
        let tau = rng.f64_in(0.3..0.9);
        let sigma = rng.f64_in(40.0..400.0);
        let w = TwoParamWindow::new(tau, sigma);
        let e1 = alias_error(&w, 0.1);
        let e2 = alias_error(&w, 0.3);
        let e3 = alias_error(&w, 0.6);
        assert!(e1 >= e2 && e2 >= e3, "{e1:e} {e2:e} {e3:e}");
    });
}

#[test]
fn trunc_monotone_in_b() {
    check("trunc_monotone_in_b", PropConfig::cases(24), |rng| {
        let tau = rng.f64_in(0.3..0.9);
        let sigma = rng.f64_in(40.0..400.0);
        let w = TwoParamWindow::new(tau, sigma);
        let t1 = trunc_error(&w, 8);
        let t2 = trunc_error(&w, 24);
        let t3 = trunc_error(&w, 48);
        assert!(t1 >= t2 && t2 >= t3, "{t1:e} {t2:e} {t3:e}");
    });
}

#[test]
fn gaussian_kappa_is_exp_quarter_sigma() {
    check(
        "gaussian_kappa_is_exp_quarter_sigma",
        PropConfig::cases(24),
        |rng| {
            // For Ĥ = e^{−σu²}: κ = Ĥ(0)/Ĥ(1/2) = e^{σ/4}, exactly.
            let sigma = rng.f64_in(5.0..100.0);
            let w = GaussianWindow::new(sigma);
            let k = kappa(&w);
            let want = (sigma / 4.0).exp();
            assert!((k - want).abs() <= 1e-6 * want, "{k} vs {want}");
        },
    );
}

#[test]
fn compact_support_is_hard_zero() {
    check("compact_support_is_hard_zero", PropConfig::cases(24), |rng| {
        let tau_frac = rng.f64_in(0.1..0.8);
        let beta = rng.f64_in(0.1..0.8);
        let off = rng.f64_in(0.0..3.0);
        let u_max = 0.5 + beta;
        let w = CompactBumpWindow::new(tau_frac * 2.0 * u_max * 0.9, u_max);
        assert_eq!(w.h_hat(u_max + off), 0.0);
        assert_eq!(alias_error(&w, beta), 0.0);
    });
}

#[test]
fn metrics_are_window_trait_object_safe() {
    // The design machinery works through &dyn Window.
    let windows: Vec<Box<dyn Window>> = vec![
        Box::new(TwoParamWindow::new(0.8, 200.0)),
        Box::new(GaussianWindow::new(40.0)),
        Box::new(CompactBumpWindow::new(0.5, 0.75)),
    ];
    for w in &windows {
        assert!(kappa(w.as_ref()) >= 1.0, "{}", w.name());
        assert!(trunc_error(w.as_ref(), 16) > 0.0);
    }
}
