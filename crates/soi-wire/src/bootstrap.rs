//! Rank bootstrap: how P anonymous processes become ranks 0..P with a
//! full TCP mesh between them.
//!
//! The protocol has one fixed meeting point (the *rendezvous* listener,
//! run by the launcher) and three message types:
//!
//! ```text
//! worker                rendezvous                 worker
//!   |--- HELLO(mesh addr) -->|
//!   |                        |  (after P hellos, ranks are assigned
//!   |                        |   in arrival order)
//!   |<-- WELCOME(rank, P,    |
//!   |        addrs[0..P]) ---|
//!   |                                                  |
//!   |------------- IDENT(my rank) ---------------------|   (mesh wiring)
//! ```
//!
//! Mesh wiring is deterministic: rank `j` *connects* to every lower rank
//! `i < j` (sending IDENT so the acceptor knows who arrived) and *accepts*
//! from every higher rank. Each worker binds its mesh listener before it
//! says HELLO, so by the time any peer learns an address from WELCOME the
//! listener behind it already exists — connects can only race the
//! acceptor's `accept()` loop, never the `bind()`, and the OS backlog
//! absorbs that race.
//!
//! Every step has a deadline ([`WireConfig`]); a missing peer surfaces as
//! [`WireError::Timeout`] or [`WireError::PeerLost`], never a hang.
//!
//! **Rejoin.** Jobs carry an *epoch* (the initial bootstrap is epoch 0).
//! When a rank dies mid-job, the launcher opens a fresh recovery round:
//! every survivor plus the respawned worker sends a HELLO that *claims*
//! its rank for the next epoch (`REJOIN` claims, vs the arrival-order
//! `NEW` claims of [`Rendezvous::serve`]), [`Rendezvous::reserve`]
//! validates the claims, and the mesh re-wires exactly as at first
//! bootstrap — same address-table WELCOME, same connect-down/accept-up
//! wiring. Ranks are pinned by the claims, so the respawned incarnation
//! lands in the dead rank's slot.

use crate::error::{classify_io, WireError};
use crate::frame::{expect_frame, write_frame, TAG_HELLO, TAG_IDENT, TAG_WELCOME};
use crate::pod::{PayloadReader, PayloadWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Deadlines and retry policy for everything the transport does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireConfig {
    /// Per-operation deadline: any single blocking read or write on an
    /// established stream must complete within this.
    pub op_timeout: Duration,
    /// Total budget for establishing one connection (including all
    /// backoff retries) and for each bootstrap accept.
    pub connect_timeout: Duration,
    /// Initial connect-retry backoff; doubles per attempt, capped at
    /// [`WireConfig::max_backoff`].
    pub initial_backoff: Duration,
    /// Backoff cap.
    pub max_backoff: Duration,
}

impl Default for WireConfig {
    fn default() -> Self {
        Self {
            op_timeout: Duration::from_secs(20),
            connect_timeout: Duration::from_secs(20),
            initial_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(250),
        }
    }
}

impl WireConfig {
    /// Defaults overridden by `SOI_WIRE_TIMEOUT_MS` (per-op deadline) and
    /// `SOI_WIRE_CONNECT_TIMEOUT_MS` (connection budget), when set.
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Some(ms) = env_ms("SOI_WIRE_TIMEOUT_MS") {
            cfg.op_timeout = ms;
        }
        if let Some(ms) = env_ms("SOI_WIRE_CONNECT_TIMEOUT_MS") {
            cfg.connect_timeout = ms;
        }
        cfg
    }
}

/// HELLO claim kind: join with no rank preference (assigned arrival order).
const CLAIM_NEW: u32 = 0;
/// HELLO claim kind: reclaim a specific rank's slot for a new epoch.
const CLAIM_REJOIN: u32 = 1;

/// Decode a HELLO payload: `(mesh_addr, claim_kind, claimed_rank, epoch)`.
/// Claimless HELLOs (the pre-epoch wire format) parse as `NEW` claims, so
/// old workers still bootstrap against a new rendezvous.
fn parse_hello(payload: &[u8]) -> Result<(String, u32, u32, u32), WireError> {
    let mut r = PayloadReader::new(payload);
    let mesh_addr = r.str()?;
    if r.remaining() == 0 {
        return Ok((mesh_addr, CLAIM_NEW, 0, 0));
    }
    let kind = r.u32()?;
    let rank = r.u32()?;
    let epoch = r.u32()?;
    Ok((mesh_addr, kind, rank, epoch))
}

fn env_ms(key: &str) -> Option<Duration> {
    std::env::var(key)
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .map(Duration::from_millis)
}

/// Prepare an accepted or connected stream for framed traffic.
fn configure(stream: &TcpStream, cfg: &WireConfig) -> Result<(), WireError> {
    stream
        .set_read_timeout(Some(cfg.op_timeout))
        .and_then(|_| stream.set_write_timeout(Some(cfg.op_timeout)))
        .and_then(|_| stream.set_nodelay(true))
        .map_err(|e| WireError::Io(e.to_string()))
}

/// Connect to `addr` with bounded exponential backoff: retry failed
/// attempts (peer not up yet) with doubling sleeps until
/// `cfg.connect_timeout` is exhausted.
pub fn connect_with_backoff(addr: &str, cfg: &WireConfig) -> Result<TcpStream, WireError> {
    let target: SocketAddr = addr
        .to_socket_addrs()
        .map_err(|e| WireError::Bootstrap(format!("bad address `{addr}`: {e}")))?
        .next()
        .ok_or_else(|| WireError::Bootstrap(format!("address `{addr}` resolved to nothing")))?;
    let deadline = Instant::now() + cfg.connect_timeout;
    let mut backoff = cfg.initial_backoff;
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(WireError::Timeout {
                peer: None,
                op: "connect",
                after: cfg.connect_timeout,
            });
        }
        match TcpStream::connect_timeout(&target, remaining) {
            Ok(s) => {
                configure(&s, cfg)?;
                return Ok(s);
            }
            Err(_) => {
                std::thread::sleep(backoff.min(deadline.saturating_duration_since(Instant::now())));
                backoff = (backoff * 2).min(cfg.max_backoff);
            }
        }
    }
}

/// Accept one connection within `cfg.connect_timeout` (std has no native
/// accept deadline, so the listener polls non-blocking).
fn accept_with_deadline(
    listener: &TcpListener,
    cfg: &WireConfig,
) -> Result<TcpStream, WireError> {
    listener
        .set_nonblocking(true)
        .map_err(|e| WireError::Io(e.to_string()))?;
    let deadline = Instant::now() + cfg.connect_timeout;
    loop {
        match listener.accept() {
            Ok((s, _)) => {
                s.set_nonblocking(false).map_err(|e| WireError::Io(e.to_string()))?;
                configure(&s, cfg)?;
                return Ok(s);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(WireError::Timeout {
                        peer: None,
                        op: "accept",
                        after: cfg.connect_timeout,
                    });
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => return Err(classify_io(e, None, "accept", cfg.connect_timeout)),
        }
    }
}

/// The launcher's side of the bootstrap: a meeting point that turns the
/// first `p` HELLOs into rank assignments.
pub struct Rendezvous {
    listener: TcpListener,
    cfg: WireConfig,
}

impl Rendezvous {
    /// Bind the meeting point (use `"127.0.0.1:0"` for an ephemeral port).
    pub fn bind(addr: &str, cfg: WireConfig) -> Result<Self, WireError> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| WireError::Bootstrap(format!("bind {addr}: {e}")))?;
        Ok(Self { listener, cfg })
    }

    /// The address workers should be pointed at.
    pub fn local_addr(&self) -> Result<String, WireError> {
        self.listener
            .local_addr()
            .map(|a| a.to_string())
            .map_err(|e| WireError::Io(e.to_string()))
    }

    /// Accept exactly `p` workers, assign ranks in arrival order, send
    /// each its WELCOME, and return the control streams **in rank order**.
    /// The launcher keeps these open to collect RESULT frames later.
    pub fn serve(&self, p: usize) -> Result<Vec<TcpStream>, WireError> {
        if p == 0 {
            return Err(WireError::Bootstrap("cannot serve 0 ranks".into()));
        }
        let mut joined: Vec<(TcpStream, String)> = Vec::with_capacity(p);
        for _ in 0..p {
            let mut stream = accept_with_deadline(&self.listener, &self.cfg)?;
            let hello = expect_frame(&mut stream, TAG_HELLO, None, self.cfg.op_timeout)?;
            let (mesh_addr, kind, claimed, epoch) = parse_hello(&hello)?;
            if kind != CLAIM_NEW {
                return Err(WireError::Protocol(format!(
                    "rank {claimed} sent a rejoin HELLO (epoch {epoch}) to an \
                     initial rendezvous"
                )));
            }
            if joined.iter().any(|(_, a)| *a == mesh_addr) {
                return Err(WireError::Protocol(format!(
                    "duplicate mesh address `{mesh_addr}` in HELLO"
                )));
            }
            joined.push((stream, mesh_addr));
        }
        let addrs: Vec<String> = joined.iter().map(|(_, a)| a.clone()).collect();
        for (rank, (stream, _)) in joined.iter_mut().enumerate() {
            let mut w = PayloadWriter::new().u32(rank as u32).u32(p as u32);
            for a in &addrs {
                w = w.str(a);
            }
            write_frame(stream, TAG_WELCOME, &w.finish(), None, self.cfg.op_timeout)?;
        }
        Ok(joined.into_iter().map(|(s, _)| s).collect())
    }

    /// Recovery round: accept exactly `p` REJOIN claims for `epoch`, each
    /// pinning a distinct rank `< p`, send WELCOMEs carrying the fresh
    /// address table, and return the new control streams **in rank
    /// order**. Accepts get extra budget on top of `connect_timeout`:
    /// survivors only come back after noticing the death, which can take
    /// up to one `op_timeout`.
    pub fn reserve(&self, p: usize, epoch: u32) -> Result<Vec<TcpStream>, WireError> {
        if p == 0 {
            return Err(WireError::Bootstrap("cannot reserve 0 ranks".into()));
        }
        let cfg = WireConfig {
            connect_timeout: self.cfg.connect_timeout + self.cfg.op_timeout,
            ..self.cfg
        };
        let mut joined: Vec<Option<(TcpStream, String)>> = (0..p).map(|_| None).collect();
        for _ in 0..p {
            let mut stream = accept_with_deadline(&self.listener, &cfg)?;
            let hello = expect_frame(&mut stream, TAG_HELLO, None, cfg.op_timeout)?;
            let (mesh_addr, kind, claimed, claimed_epoch) = parse_hello(&hello)?;
            if kind != CLAIM_REJOIN {
                return Err(WireError::Protocol(format!(
                    "expected a rejoin HELLO for epoch {epoch}, got a new join \
                     from `{mesh_addr}`"
                )));
            }
            if claimed_epoch != epoch {
                return Err(WireError::Protocol(format!(
                    "rank {claimed} rejoined with epoch {claimed_epoch}, \
                     recovery round is epoch {epoch}"
                )));
            }
            let claimed = claimed as usize;
            if claimed >= p {
                return Err(WireError::Protocol(format!(
                    "rejoin claims rank {claimed} of {p}"
                )));
            }
            if joined[claimed].is_some() {
                return Err(WireError::Protocol(format!(
                    "two workers claimed rank {claimed} in epoch {epoch}"
                )));
            }
            joined[claimed] = Some((stream, mesh_addr));
        }
        let addrs: Vec<String> = joined
            .iter()
            .map(|s| s.as_ref().expect("all slots filled").1.clone())
            .collect();
        let mut controls = Vec::with_capacity(p);
        for (rank, slot) in joined.into_iter().enumerate() {
            let (mut stream, _) = slot.expect("all slots filled");
            let mut w = PayloadWriter::new().u32(rank as u32).u32(p as u32);
            for a in &addrs {
                w = w.str(a);
            }
            write_frame(&mut stream, TAG_WELCOME, &w.finish(), None, cfg.op_timeout)?;
            controls.push(stream);
        }
        Ok(controls)
    }
}

/// What a worker holds after bootstrap completes: its identity, the
/// control stream back to the launcher, and one stream per peer.
pub struct Bootstrap {
    /// This process's rank in `0..size`.
    pub rank: usize,
    /// Number of ranks.
    pub size: usize,
    /// The control connection to the rendezvous/launcher (RESULT frames
    /// travel back on this).
    pub control: TcpStream,
    /// `peers[j]` is the mesh stream to rank `j`; `None` at `j == rank`.
    pub peers: Vec<Option<TcpStream>>,
    /// The deadlines this mesh was wired with.
    pub cfg: WireConfig,
    /// The job epoch this mesh belongs to (0 for the initial bootstrap,
    /// incremented by each recovery round).
    pub epoch: u32,
    /// The rendezvous address this worker bootstrapped against — kept so
    /// the communicator can reconnect for a recovery round.
    pub rendezvous: String,
}

impl Bootstrap {
    /// Join the computation at `rendezvous_addr`: bind a mesh listener,
    /// say HELLO, learn rank + peer table from WELCOME, and wire the
    /// full mesh (connect down, accept up).
    pub fn join(rendezvous_addr: &str, cfg: WireConfig) -> Result<Self, WireError> {
        Self::handshake(rendezvous_addr, None, 0, cfg)
    }

    /// Reclaim `rank`'s slot for `epoch` at a recovery rendezvous
    /// ([`Rendezvous::reserve`]): identical to [`Bootstrap::join`] except
    /// the HELLO pins the rank instead of taking arrival order.
    pub fn rejoin(
        rendezvous_addr: &str,
        rank: usize,
        epoch: u32,
        cfg: WireConfig,
    ) -> Result<Self, WireError> {
        Self::handshake(rendezvous_addr, Some(rank), epoch, cfg)
    }

    fn handshake(
        rendezvous_addr: &str,
        claim: Option<usize>,
        epoch: u32,
        cfg: WireConfig,
    ) -> Result<Self, WireError> {
        // Mesh listener first: its address is what HELLO advertises, and
        // binding before HELLO is what makes peer connects race-free.
        let mesh = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| WireError::Bootstrap(format!("mesh bind: {e}")))?;
        let mesh_addr = mesh
            .local_addr()
            .map_err(|e| WireError::Io(e.to_string()))?
            .to_string();

        let mut control = connect_with_backoff(rendezvous_addr, &cfg)?;
        let hello = match claim {
            None => PayloadWriter::new()
                .str(&mesh_addr)
                .u32(CLAIM_NEW)
                .u32(0)
                .u32(epoch),
            Some(r) => PayloadWriter::new()
                .str(&mesh_addr)
                .u32(CLAIM_REJOIN)
                .u32(r as u32)
                .u32(epoch),
        };
        write_frame(&mut control, TAG_HELLO, &hello.finish(), None, cfg.op_timeout)?;
        let welcome = expect_frame(&mut control, TAG_WELCOME, None, cfg.op_timeout)?;
        let mut r = PayloadReader::new(&welcome);
        let rank = r.u32()? as usize;
        let size = r.u32()? as usize;
        if size == 0 || rank >= size {
            return Err(WireError::Protocol(format!(
                "WELCOME assigned rank {rank} of {size}"
            )));
        }
        if let Some(claimed) = claim {
            if rank != claimed {
                return Err(WireError::Protocol(format!(
                    "rejoin claimed rank {claimed} but WELCOME assigned {rank}"
                )));
            }
        }
        let mut addrs = Vec::with_capacity(size);
        for _ in 0..size {
            addrs.push(r.str()?);
        }

        let mut peers: Vec<Option<TcpStream>> = (0..size).map(|_| None).collect();
        // Connect to every lower rank, announcing who we are.
        for (j, addr) in addrs.iter().enumerate().take(rank) {
            let mut s = connect_with_backoff(addr, &cfg)
                .map_err(|e| tag_peer(e, j))?;
            write_frame(
                &mut s,
                TAG_IDENT,
                &PayloadWriter::new().u32(rank as u32).finish(),
                Some(j),
                cfg.op_timeout,
            )?;
            peers[j] = Some(s);
        }
        // Accept from every higher rank; IDENT tells us which arrived.
        for _ in rank + 1..size {
            let mut s = accept_with_deadline(&mesh, &cfg)?;
            let ident = expect_frame(&mut s, TAG_IDENT, None, cfg.op_timeout)?;
            let who = PayloadReader::new(&ident).u32()? as usize;
            if who <= rank || who >= size {
                return Err(WireError::Protocol(format!(
                    "rank {rank} accepted IDENT from out-of-range rank {who}"
                )));
            }
            if peers[who].is_some() {
                return Err(WireError::Protocol(format!(
                    "rank {who} connected twice during mesh wiring"
                )));
            }
            peers[who] = Some(s);
        }
        Ok(Self {
            rank,
            size,
            control,
            peers,
            cfg,
            epoch,
            rendezvous: rendezvous_addr.to_string(),
        })
    }
}

fn tag_peer(e: WireError, peer: usize) -> WireError {
    match e {
        WireError::PeerLost { detail, .. } => WireError::PeerLost { peer: Some(peer), detail },
        WireError::Timeout { op, after, .. } => WireError::Timeout { peer: Some(peer), op, after },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{read_frame, TAG_DATA};

    fn fast_cfg() -> WireConfig {
        WireConfig {
            op_timeout: Duration::from_secs(5),
            connect_timeout: Duration::from_secs(5),
            ..WireConfig::default()
        }
    }

    /// Full bootstrap of `p` ranks on localhost threads.
    fn boot(p: usize) -> Vec<Bootstrap> {
        let cfg = fast_cfg();
        let rv = Rendezvous::bind("127.0.0.1:0", cfg).unwrap();
        let addr = rv.local_addr().unwrap();
        std::thread::scope(|s| {
            let server = s.spawn(move || rv.serve(p).unwrap());
            let workers: Vec<_> = (0..p)
                .map(|_| {
                    let addr = addr.clone();
                    s.spawn(move || Bootstrap::join(&addr, cfg).unwrap())
                })
                .collect();
            let _controls = server.join().unwrap();
            let mut boots: Vec<Bootstrap> =
                workers.into_iter().map(|w| w.join().unwrap()).collect();
            boots.sort_by_key(|b| b.rank);
            boots
        })
    }

    #[test]
    fn ranks_are_unique_and_mesh_is_complete() {
        let p = 4;
        let boots = boot(p);
        for (i, b) in boots.iter().enumerate() {
            assert_eq!(b.rank, i);
            assert_eq!(b.size, p);
            for j in 0..p {
                assert_eq!(b.peers[j].is_some(), j != i, "rank {i} peer {j}");
            }
        }
    }

    #[test]
    fn mesh_links_carry_frames_both_ways() {
        let mut boots = boot(3);
        let cfg = fast_cfg();
        // rank 0 -> rank 2 and back on the same link.
        let b2 = boots.pop().unwrap();
        let _b1 = boots.pop().unwrap();
        let b0 = boots.pop().unwrap();
        let mut s02 = b0.peers[2].as_ref().unwrap();
        let mut s20 = b2.peers[0].as_ref().unwrap();
        write_frame(&mut s02, TAG_DATA, b"ping", Some(2), cfg.op_timeout).unwrap();
        let (tag, body) = read_frame(&mut s20, Some(0), cfg.op_timeout).unwrap();
        assert_eq!((tag, body.as_slice()), (TAG_DATA, b"ping".as_slice()));
        write_frame(&mut s20, TAG_DATA, b"pong", Some(0), cfg.op_timeout).unwrap();
        let (tag, body) = read_frame(&mut s02, Some(2), cfg.op_timeout).unwrap();
        assert_eq!((tag, body.as_slice()), (TAG_DATA, b"pong".as_slice()));
    }

    #[test]
    fn rejoin_round_pins_claimed_ranks() {
        let p = 3;
        let cfg = fast_cfg();
        let rv = Rendezvous::bind("127.0.0.1:0", cfg).unwrap();
        let addr = rv.local_addr().unwrap();
        let boots = std::thread::scope(|s| {
            let server = s.spawn(move || rv.reserve(p, 1).unwrap());
            // Arrive in reverse rank order: claims, not arrival, decide.
            let workers: Vec<_> = (0..p)
                .rev()
                .map(|r| {
                    let addr = addr.clone();
                    s.spawn(move || Bootstrap::rejoin(&addr, r, 1, cfg).unwrap())
                })
                .collect();
            let _controls = server.join().unwrap();
            let mut boots: Vec<Bootstrap> =
                workers.into_iter().map(|w| w.join().unwrap()).collect();
            boots.sort_by_key(|b| b.rank);
            boots
        });
        for (i, b) in boots.iter().enumerate() {
            assert_eq!(b.rank, i);
            assert_eq!(b.size, p);
            assert_eq!(b.epoch, 1);
            for j in 0..p {
                assert_eq!(b.peers[j].is_some(), j != i, "rank {i} peer {j}");
            }
        }
    }

    #[test]
    fn initial_rendezvous_rejects_rejoin_claims() {
        let cfg = WireConfig {
            op_timeout: Duration::from_millis(500),
            connect_timeout: Duration::from_millis(500),
            ..WireConfig::default()
        };
        let rv = Rendezvous::bind("127.0.0.1:0", cfg).unwrap();
        let addr = rv.local_addr().unwrap();
        std::thread::scope(|s| {
            let server = s.spawn(move || rv.serve(1));
            let w = s.spawn(move || Bootstrap::rejoin(&addr, 0, 1, cfg));
            let err = server.join().unwrap().unwrap_err();
            assert!(matches!(err, WireError::Protocol(_)), "got {err:?}");
            assert!(w.join().unwrap().is_err());
        });
    }

    #[test]
    fn recovery_round_rejects_duplicate_rank_claims() {
        let cfg = WireConfig {
            op_timeout: Duration::from_millis(500),
            connect_timeout: Duration::from_millis(500),
            ..WireConfig::default()
        };
        let rv = Rendezvous::bind("127.0.0.1:0", cfg).unwrap();
        let addr = rv.local_addr().unwrap();
        std::thread::scope(|s| {
            let server = s.spawn(move || rv.reserve(2, 1));
            let ws: Vec<_> = (0..2)
                .map(|_| {
                    let addr = addr.clone();
                    s.spawn(move || Bootstrap::rejoin(&addr, 0, 1, cfg))
                })
                .collect();
            let err = server.join().unwrap().unwrap_err();
            assert!(matches!(err, WireError::Protocol(_)), "got {err:?}");
            for w in ws {
                assert!(w.join().unwrap().is_err());
            }
        });
    }

    #[test]
    fn missing_worker_times_out_instead_of_hanging() {
        let cfg = WireConfig {
            op_timeout: Duration::from_millis(300),
            connect_timeout: Duration::from_millis(300),
            ..WireConfig::default()
        };
        let rv = Rendezvous::bind("127.0.0.1:0", cfg).unwrap();
        let addr = rv.local_addr().unwrap();
        // Ask for 2 workers but only start 1: serve must time out.
        std::thread::scope(|s| {
            let server = s.spawn(move || rv.serve(2));
            let w = s.spawn(move || Bootstrap::join(&addr, cfg));
            let err = server.join().unwrap().unwrap_err();
            assert!(
                matches!(err, WireError::Timeout { op: "accept", .. }),
                "got {err:?}"
            );
            // The lone worker fails too (WELCOME never arrives) — also timely.
            assert!(w.join().unwrap().is_err());
        });
    }

    #[test]
    fn connect_backoff_gives_up_within_budget() {
        let cfg = WireConfig {
            connect_timeout: Duration::from_millis(200),
            ..WireConfig::default()
        };
        // A port that is almost certainly closed: bind-then-drop.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let t0 = Instant::now();
        let r = connect_with_backoff(&dead, &cfg);
        assert!(r.is_err());
        assert!(t0.elapsed() < Duration::from_secs(5), "backoff must be bounded");
    }

    #[test]
    fn env_knob_parses_and_ignores_garbage() {
        // A name no other test touches, so parallel tests can't race it.
        const KEY: &str = "SOI_WIRE_TEST_ONLY_MS";
        std::env::set_var(KEY, "750");
        assert_eq!(env_ms(KEY), Some(Duration::from_millis(750)));
        std::env::set_var(KEY, "0");
        assert_eq!(env_ms(KEY), None, "zero deadline would mean 'hang forever'");
        std::env::set_var(KEY, "not-a-number");
        assert_eq!(env_ms(KEY), None);
        std::env::remove_var(KEY);
        assert_eq!(env_ms(KEY), None);
    }
}
