//! The per-process communicator over a bootstrapped TCP mesh.
//!
//! [`WireComm`] mirrors the surface (and the trace conventions) of
//! `soi_simnet::RankComm`, but every payload really crosses a socket and
//! every operation returns `Result` — a dead peer is a prompt
//! [`WireError::PeerLost`], a stuck one a [`WireError::Timeout`], never a
//! hang.
//!
//! Three structural choices keep the collectives deadlock-free (and the
//! big one fast) on real TCP:
//!
//! * **Outgoing traffic streams from one writer thread per collective.**
//!   TCP gives each direction a finite buffer; two peers that both
//!   `write_all` a large block before reading deadlock once both buffers
//!   fill. Every paired or global exchange therefore pushes its outgoing
//!   frames from a single scoped thread (writing on `&TcpStream`) while
//!   the caller's thread reads — correct for any payload size, no
//!   buffer-size assumptions. For the all-to-all family the writer
//!   streams *every* round of the whole schedule back-to-back through a
//!   reused encode buffer, so rounds pipeline on the wire instead of
//!   running send-wait-receive lockstep, and payloads are decoded
//!   straight into the caller's receive buffer (no per-round temporary).
//! * **All-to-all is a pairwise-exchange schedule.** Round `r ∈ 1..P`
//!   pairs rank `k` with destination `(k+r) mod P` and source
//!   `(k−r) mod P` — every round is a perfect matching of simultaneous
//!   exchanges. The segmented variant ([`WireComm::all_to_all_seg`])
//!   iterates that schedule once per segment, sub-block `(segment,
//!   round)`-major on every rank, so each link carries frames in one
//!   globally agreed order and a segment's data all lands before any
//!   later segment's.
//! * **Self-traffic goes through an in-process inbox.** A rank may name
//!   itself as the destination and/or source of a paired exchange (the
//!   simulated fabric permits it, so the wire must too). Payloads
//!   "sent" to self are queued on [`WireComm`]'s own inbox and "received"
//!   by popping it — no socket involved, same FIFO semantics as a
//!   buffered self-link.
//!
//! Error attribution: inside an exchange, write-side failures are tagged
//! with the *destination* rank and read-side failures with the *source* —
//! recovery decisions key off the reported peer, so a dead outbound link
//! must never be blamed on the (healthy) rank we happened to be reading
//! from.

use crate::bootstrap::{Bootstrap, WireConfig};
use crate::error::WireError;
use crate::frame::{read_frame, read_frame_into, write_frame, TAG_DATA};
use crate::pod::{decode_into, decode_slice, encode_into, encode_slice, Pod};
use soi_trace::{CollectiveOp, Trace};
use std::collections::VecDeque;
use std::net::TcpStream;
use std::time::Instant;

/// Per-process traffic accounting; field-for-field the same shape as
/// `soi_simnet::CommStats` so tests can assert the same invariants
/// against either transport.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WireStats {
    /// Payload bytes pushed onto sockets (excludes frame headers).
    pub bytes_sent: u64,
    /// Payload bytes read off sockets.
    pub bytes_received: u64,
    /// Point-to-point messages sent.
    pub p2p_messages: u64,
    /// All-to-all collectives participated in.
    pub all_to_alls: u64,
    /// Other collectives (barrier/broadcast/gather/reduce).
    pub other_collectives: u64,
}

/// A rank's endpoint onto the real network.
pub struct WireComm {
    rank: usize,
    size: usize,
    peers: Vec<Option<TcpStream>>,
    cfg: WireConfig,
    stats: WireStats,
    trace: Trace,
    comm_seconds: f64,
    /// Rendezvous address to reconnect to for a recovery round; empty for
    /// meshes built without one (then [`WireComm::reconnect`] fails).
    rendezvous: String,
    /// Job epoch this mesh belongs to (0 = initial bootstrap).
    epoch: u32,
    /// FIFO of payloads this rank sent to itself and has not yet
    /// received back — the buffered self-link simnet gets for free.
    self_inbox: VecDeque<Vec<u8>>,
}

impl WireComm {
    /// Wrap a completed [`Bootstrap`] (the control stream stays with the
    /// caller — it is launcher business, not collective business).
    pub fn new(rank: usize, size: usize, peers: Vec<Option<TcpStream>>, cfg: WireConfig) -> Self {
        assert_eq!(peers.len(), size, "need one peer slot per rank");
        Self {
            rank,
            size,
            peers,
            cfg,
            stats: WireStats::default(),
            trace: Trace::disabled(),
            comm_seconds: 0.0,
            rendezvous: String::new(),
            epoch: 0,
            self_inbox: VecDeque::new(),
        }
    }

    /// Build from a bootstrap, returning the communicator and the control
    /// stream separately.
    pub fn from_bootstrap(b: Bootstrap) -> (Self, TcpStream) {
        let mut comm = Self::new(b.rank, b.size, b.peers, b.cfg);
        comm.rendezvous = b.rendezvous;
        comm.epoch = b.epoch;
        (comm, b.control)
    }

    /// The job epoch this mesh belongs to.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> WireStats {
        self.stats
    }

    /// Wall-clock seconds spent inside communication operations.
    pub fn comm_seconds(&self) -> f64 {
        self.comm_seconds
    }

    /// This rank's trace handle.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Install a trace handle (events carry `t_virt = None`; there is no
    /// virtual clock on a real network).
    pub fn set_trace(&mut self, trace: Trace) {
        self.trace = trace;
    }

    fn stream(&self, peer: usize) -> Result<&TcpStream, WireError> {
        if peer >= self.size || peer == self.rank {
            return Err(WireError::Protocol(format!(
                "rank {} has no link to peer {peer} of {}",
                self.rank, self.size
            )));
        }
        self.peers[peer].as_ref().ok_or_else(|| WireError::PeerLost {
            peer: Some(peer),
            detail: "link already torn down".into(),
        })
    }

    fn tag_peer(e: WireError, peer: usize) -> WireError {
        match e {
            WireError::PeerLost { peer: None, detail } => {
                WireError::PeerLost { peer: Some(peer), detail }
            }
            WireError::Timeout { peer: None, op, after } => {
                WireError::Timeout { peer: Some(peer), op, after }
            }
            other => other,
        }
    }

    /// Pop the oldest payload this rank sent to itself; an empty inbox is
    /// the wire analogue of blocking forever on an empty self-mailbox, so
    /// it reports a timeout against this very rank.
    fn recv_self(&mut self, op: &'static str) -> Result<Vec<u8>, WireError> {
        self.self_inbox.pop_front().ok_or(WireError::Timeout {
            peer: Some(self.rank),
            op,
            after: self.cfg.op_timeout,
        })
    }

    /// Send a typed payload to `dst` (framed, blocking, deadline-bounded).
    /// `dst == self.rank` queues on the self-inbox, like simnet's buffered
    /// self-link.
    pub fn send<T: Pod>(&mut self, dst: usize, data: &[T]) -> Result<(), WireError> {
        let t0 = Instant::now();
        let payload = encode_slice(data);
        let bytes = payload.len() as u64;
        if dst == self.rank {
            self.self_inbox.push_back(payload);
        } else {
            let mut s = self.stream(dst)?;
            write_frame(&mut s, TAG_DATA, &payload, Some(dst), self.cfg.op_timeout)?;
        }
        self.stats.bytes_sent += bytes;
        self.stats.p2p_messages += 1;
        self.trace.send(dst, bytes, None);
        self.comm_seconds += t0.elapsed().as_secs_f64();
        Ok(())
    }

    /// Receive a typed payload from `src` (`src == self.rank` pops the
    /// self-inbox).
    pub fn recv<T: Pod>(&mut self, src: usize) -> Result<Vec<T>, WireError> {
        let t0 = Instant::now();
        let payload = if src == self.rank {
            self.recv_self("recv")?
        } else {
            let mut s = self.stream(src)?;
            let (tag, payload) = read_frame(&mut s, Some(src), self.cfg.op_timeout)?;
            if tag != TAG_DATA {
                return Err(WireError::Protocol(format!(
                    "expected DATA from rank {src}, got tag {tag:#04x}"
                )));
            }
            payload
        };
        let bytes = payload.len() as u64;
        let out = decode_slice(&payload)?;
        self.stats.bytes_received += bytes;
        self.trace.recv(src, bytes, None);
        self.comm_seconds += t0.elapsed().as_secs_f64();
        Ok(out)
    }

    /// Write `payload` to `dst` while reading one DATA frame from `src`,
    /// concurrently — the deadlock-free primitive under every paired
    /// exchange. `dst == src` is fine (TCP is full duplex). Write-side
    /// failures come back tagged with `dst`, read-side with `src` —
    /// callers must NOT re-tag (a blanket `tag_peer(e, src)` would blame
    /// the source rank for a dead outbound link).
    fn exchange_frames(
        &self,
        dst: usize,
        payload: &[u8],
        src: usize,
    ) -> Result<Vec<u8>, WireError> {
        let out_stream = self.stream(dst)?;
        let in_stream = self.stream(src)?;
        let deadline = self.cfg.op_timeout;
        std::thread::scope(|scope| {
            let writer = scope.spawn(move || {
                let mut w = out_stream;
                write_frame(&mut w, TAG_DATA, payload, Some(dst), deadline)
            });
            let mut r = in_stream;
            let read_result = read_frame(&mut r, Some(src), deadline);
            let write_result = writer.join().expect("wire writer thread panicked");
            write_result.map_err(|e| Self::tag_peer(e, dst))?;
            let (tag, body) = read_result.map_err(|e| Self::tag_peer(e, src))?;
            if tag != TAG_DATA {
                return Err(WireError::Protocol(format!(
                    "expected DATA from rank {src}, got tag {tag:#04x}"
                )));
            }
            Ok(body)
        })
    }

    /// Simultaneous exchange: send `data` to `dst` while receiving from
    /// `src` (the SOI halo-exchange pattern). Either endpoint may be this
    /// rank itself: a self-destination queues the payload on the
    /// self-inbox while the wire read proceeds, a self-source pops it —
    /// the same one-sided self-exchange the simulated fabric permits.
    pub fn sendrecv<T: Pod>(
        &mut self,
        dst: usize,
        data: &[T],
        src: usize,
    ) -> Result<Vec<T>, WireError> {
        let t0 = Instant::now();
        let payload = encode_slice(data);
        let sent_bytes = payload.len() as u64;
        self.trace.send(dst, sent_bytes, None);
        let body = match (dst == self.rank, src == self.rank) {
            (true, true) => payload, // pure self-exchange: no wire involved
            (true, false) => {
                // Send-to-self, receive from a real peer.
                self.self_inbox.push_back(payload);
                let mut s = self.stream(src)?;
                let (tag, body) = read_frame(&mut s, Some(src), self.cfg.op_timeout)
                    .map_err(|e| Self::tag_peer(e, src))?;
                if tag != TAG_DATA {
                    return Err(WireError::Protocol(format!(
                        "expected DATA from rank {src}, got tag {tag:#04x}"
                    )));
                }
                body
            }
            (false, true) => {
                // Send to a real peer, receive from self. The peer's
                // mirrored call is read-only toward us, so a plain
                // blocking write cannot deadlock against it.
                let mut s = self.stream(dst)?;
                write_frame(&mut s, TAG_DATA, &payload, Some(dst), self.cfg.op_timeout)
                    .map_err(|e| Self::tag_peer(e, dst))?;
                self.recv_self("sendrecv")?
            }
            (false, false) => self.exchange_frames(dst, &payload, src)?,
        };
        let recv_bytes = body.len() as u64;
        let out = decode_slice(&body)?;
        self.stats.bytes_sent += sent_bytes;
        self.stats.p2p_messages += 1;
        self.stats.bytes_received += recv_bytes;
        self.trace.recv(src, recv_bytes, None);
        self.trace.collective(CollectiveOp::SendRecv, recv_bytes, None);
        self.comm_seconds += t0.elapsed().as_secs_f64();
        Ok(out)
    }

    /// All-to-all with equal blocks: block `d` of `send` goes to rank
    /// `d`; `recv` block `s` arrives from rank `s` — the paper's single
    /// global exchange, streamed over real sockets (one writer thread
    /// pipelines all P−1 rounds; see [`WireComm::all_to_all_seg`]).
    pub fn all_to_all<T: Pod>(&mut self, send: &[T], recv: &mut [T]) -> Result<(), WireError> {
        self.all_to_all_seg(send, recv, 1, &mut |_, _, _| {})
    }

    /// Segment-granular streamed all-to-all with compute overlap — the
    /// pipelined exchange under the overlapped SOI schedule.
    ///
    /// `send` holds `P` destination blocks, each `nseg` sub-blocks of
    /// `rows = len / (P·nseg)` elements: sub-block `(d, s)` at
    /// `send[(d·nseg + s)·rows..]` goes to rank `d` for its segment `s`.
    /// Deliveries land *segment-major*: sub-block `(s, src)` at
    /// `recv[(s·P + src)·rows..]`, so each segment's `P·rows` region is
    /// contiguous. `on_seg(s, segment, clock)` fires once per segment in
    /// ascending order as soon as all of that segment's sub-blocks are
    /// in place — while later segments are still in flight — with `clock
    /// = None` (no virtual clock on a real network). Callback time is
    /// excluded from [`WireComm::comm_seconds`].
    ///
    /// One scoped writer thread streams the entire `(segment,
    /// round)`-major schedule through a reused encode buffer; the caller
    /// thread decodes frames straight into `recv` and runs the
    /// callbacks. Both sides follow the same global order restricted to
    /// each link, so per-link FIFO delivery keeps every sub-block
    /// matched to its slot. With `nseg = 1` this is exactly
    /// [`WireComm::all_to_all`] (identical layout, one callback at the
    /// end), and the accounting (bytes, events, one `AllToAll`
    /// collective excluding the self-block) is the same for any `nseg`.
    pub fn all_to_all_seg<T: Pod>(
        &mut self,
        send: &[T],
        recv: &mut [T],
        nseg: usize,
        on_seg: &mut dyn FnMut(usize, &mut [T], Option<f64>),
    ) -> Result<(), WireError> {
        let p = self.size;
        let rank = self.rank;
        if send.len() != recv.len() {
            return Err(WireError::Protocol(format!(
                "all_to_all buffers must match: {} vs {}",
                send.len(),
                recv.len()
            )));
        }
        if nseg == 0 || send.len() % (p * nseg) != 0 {
            return Err(WireError::Protocol(format!(
                "all_to_all length {} not divisible by {p} ranks x {nseg} segments",
                send.len()
            )));
        }
        let rows = send.len() / (p * nseg);
        let sub_bytes = (rows * T::BYTES) as u64;
        let deadline = self.cfg.op_timeout;
        // Validate every link up front so the writer thread cannot race a
        // slot the reader already reported missing.
        for peer in 0..p {
            if peer != rank {
                self.stream(peer)?;
            }
        }
        let peers = &self.peers;
        let trace = &self.trace;
        let stats = &mut self.stats;
        let mut comm_elapsed = 0.0f64;
        let result = std::thread::scope(|scope| -> Result<(), WireError> {
            let writer = scope.spawn(move || -> Result<(), WireError> {
                let mut buf = Vec::new();
                for si in 0..nseg {
                    for r in 1..p {
                        let dst = (rank + r) % p;
                        encode_into(&send[(dst * nseg + si) * rows..][..rows], &mut buf);
                        let mut w = peers[dst].as_ref().expect("link validated above");
                        write_frame(&mut w, TAG_DATA, &buf, Some(dst), deadline)
                            .map_err(|e| Self::tag_peer(e, dst))?;
                    }
                }
                Ok(())
            });
            let mut t0 = Instant::now();
            let mut payload = Vec::new();
            let mut read_err: Option<WireError> = None;
            'deliver: for si in 0..nseg {
                for r in 1..p {
                    let src = (rank + p - r) % p;
                    let dst = (rank + r) % p;
                    let mut s = peers[src].as_ref().expect("link validated above");
                    let round = (|| -> Result<(), WireError> {
                        let tag = read_frame_into(&mut s, &mut payload, Some(src), deadline)
                            .map_err(|e| Self::tag_peer(e, src))?;
                        if tag != TAG_DATA {
                            return Err(WireError::Protocol(format!(
                                "expected DATA from rank {src}, got tag {tag:#04x}"
                            )));
                        }
                        if payload.len() as u64 != sub_bytes {
                            return Err(WireError::Protocol(format!(
                                "ragged all_to_all sub-block from {src}: {} bytes, expected {sub_bytes}",
                                payload.len()
                            )));
                        }
                        decode_into(&payload, &mut recv[(si * p + src) * rows..][..rows])
                    })();
                    if let Err(e) = round {
                        read_err = Some(e);
                        break 'deliver;
                    }
                    trace.send(dst, sub_bytes, None);
                    trace.recv(src, sub_bytes, None);
                    stats.bytes_sent += sub_bytes;
                    stats.bytes_received += sub_bytes;
                }
                recv[(si * p + rank) * rows..][..rows]
                    .copy_from_slice(&send[(rank * nseg + si) * rows..][..rows]);
                comm_elapsed += t0.elapsed().as_secs_f64();
                on_seg(si, &mut recv[si * p * rows..][..p * rows], None);
                t0 = Instant::now();
            }
            let write_result = writer.join().expect("wire writer thread panicked");
            comm_elapsed += t0.elapsed().as_secs_f64();
            // Writer errors carry the severed destination; prefer them
            // over the read-side error they usually cascade into.
            write_result?;
            match read_err {
                Some(e) => Err(e),
                None => Ok(()),
            }
        });
        // Same accounting convention as simnet: the self-block never
        // touches the wire and is excluded from the collective total.
        let total_bytes = (p - 1) as u64 * nseg as u64 * sub_bytes * p as u64;
        self.stats.all_to_alls += 1;
        self.trace.collective(CollectiveOp::AllToAll, total_bytes, None);
        self.comm_seconds += comm_elapsed;
        result
    }

    /// Variable-count all-to-all: `send` partitioned by `send_counts`
    /// (one entry per destination); returns the received blocks
    /// concatenated in rank order.
    pub fn all_to_allv<T: Pod>(
        &mut self,
        send: &[T],
        send_counts: &[usize],
    ) -> Result<Vec<T>, WireError> {
        let t0 = Instant::now();
        let p = self.size;
        if send_counts.len() != p {
            return Err(WireError::Protocol(format!(
                "need one send count per rank: {} counts for {p} ranks",
                send_counts.len()
            )));
        }
        if send_counts.iter().sum::<usize>() != send.len() {
            return Err(WireError::Protocol(
                "send counts must cover the buffer".into(),
            ));
        }
        let mut offsets = Vec::with_capacity(p + 1);
        offsets.push(0usize);
        for &c in send_counts {
            offsets.push(offsets.last().unwrap() + c);
        }
        let mut blocks: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
        blocks[self.rank] = send[offsets[self.rank]..offsets[self.rank + 1]].to_vec();
        let mut total_recv_bytes = 0u64;
        for r in 1..p {
            let dst = (self.rank + r) % p;
            let src = (self.rank + p - r) % p;
            let payload = encode_slice(&send[offsets[dst]..offsets[dst + 1]]);
            let sent_bytes = payload.len() as u64;
            self.trace.send(dst, sent_bytes, None);
            let body = self.exchange_frames(dst, &payload, src)?;
            let bytes = body.len() as u64;
            total_recv_bytes += bytes;
            self.stats.bytes_sent += sent_bytes;
            self.stats.bytes_received += bytes;
            self.trace.recv(src, bytes, None);
            blocks[src] = decode_slice(&body)?;
        }
        let out: Vec<T> = blocks.into_iter().flatten().collect();
        // Same cost-model convention as simnet: charge the aggregate as
        // an even all-to-all estimated from this rank's received bytes.
        let charged = total_recv_bytes * p as u64;
        self.stats.all_to_alls += 1;
        self.trace.collective(CollectiveOp::AllToAllV, charged, None);
        self.comm_seconds += t0.elapsed().as_secs_f64();
        Ok(out)
    }

    /// Broadcast `data` from `root` to every rank.
    pub fn broadcast<T: Pod>(&mut self, root: usize, data: Vec<T>) -> Result<Vec<T>, WireError> {
        let t0 = Instant::now();
        let out = if self.rank == root {
            let payload = encode_slice(&data);
            let bytes = payload.len() as u64;
            for dst in 0..self.size {
                if dst == root {
                    continue;
                }
                let mut s = self.stream(dst)?;
                write_frame(&mut s, TAG_DATA, &payload, Some(dst), self.cfg.op_timeout)?;
                self.stats.bytes_sent += bytes;
                self.trace.send(dst, bytes, None);
            }
            data
        } else {
            let mut s = self.stream(root)?;
            let (tag, body) = read_frame(&mut s, Some(root), self.cfg.op_timeout)?;
            if tag != TAG_DATA {
                return Err(WireError::Protocol(format!(
                    "expected DATA broadcast from root {root}, got tag {tag:#04x}"
                )));
            }
            let bytes = body.len() as u64;
            self.stats.bytes_received += bytes;
            self.trace.recv(root, bytes, None);
            decode_slice(&body)?
        };
        let bytes = (out.len() * T::BYTES) as u64;
        self.stats.other_collectives += 1;
        self.trace.collective(CollectiveOp::Broadcast, bytes, None);
        self.comm_seconds += t0.elapsed().as_secs_f64();
        Ok(out)
    }

    /// Gather every rank's `data` at `root` (rank-ordered concatenation);
    /// other ranks get `None`.
    pub fn gather<T: Pod>(
        &mut self,
        root: usize,
        data: &[T],
    ) -> Result<Option<Vec<T>>, WireError> {
        let t0 = Instant::now();
        let result = if self.rank == root {
            let mut out = Vec::new();
            for src in 0..self.size {
                if src == root {
                    out.extend_from_slice(data);
                    continue;
                }
                let mut s = self.stream(src)?;
                let (tag, body) = read_frame(&mut s, Some(src), self.cfg.op_timeout)?;
                if tag != TAG_DATA {
                    return Err(WireError::Protocol(format!(
                        "expected DATA in gather from {src}, got tag {tag:#04x}"
                    )));
                }
                let bytes = body.len() as u64;
                self.stats.bytes_received += bytes;
                self.trace.recv(src, bytes, None);
                out.extend(decode_slice::<T>(&body)?);
            }
            Some(out)
        } else {
            let payload = encode_slice(data);
            let bytes = payload.len() as u64;
            let mut s = self.stream(root)?;
            write_frame(&mut s, TAG_DATA, &payload, Some(root), self.cfg.op_timeout)?;
            self.stats.bytes_sent += bytes;
            self.trace.send(root, bytes, None);
            None
        };
        let bytes = (data.len() * T::BYTES) as u64;
        self.stats.other_collectives += 1;
        self.trace.collective(CollectiveOp::Gather, bytes, None);
        self.comm_seconds += t0.elapsed().as_secs_f64();
        Ok(result)
    }

    /// All-gather: every rank receives the rank-ordered concatenation.
    /// Runs as P−1 pairwise exchange rounds (same schedule as
    /// [`WireComm::all_to_all`], each round carrying this rank's whole
    /// contribution).
    pub fn all_gather<T: Pod>(&mut self, data: &[T]) -> Result<Vec<T>, WireError> {
        let t0 = Instant::now();
        let p = self.size;
        let payload = encode_slice(data);
        let mut blocks: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
        blocks[self.rank] = data.to_vec();
        for r in 1..p {
            let dst = (self.rank + r) % p;
            let src = (self.rank + p - r) % p;
            let sent_bytes = payload.len() as u64;
            self.trace.send(dst, sent_bytes, None);
            let body = self.exchange_frames(dst, &payload, src)?;
            let bytes = body.len() as u64;
            self.stats.bytes_sent += sent_bytes;
            self.stats.bytes_received += bytes;
            self.trace.recv(src, bytes, None);
            blocks[src] = decode_slice(&body)?;
        }
        let out: Vec<T> = blocks.into_iter().flatten().collect();
        let bytes = (data.len() * T::BYTES) as u64 * p as u64;
        self.stats.other_collectives += 1;
        self.trace.collective(CollectiveOp::AllGather, bytes, None);
        self.comm_seconds += t0.elapsed().as_secs_f64();
        Ok(out)
    }

    /// Barrier: a one-token pairwise round with every peer. The tokens
    /// are protocol, not payload, so neither send/recv events nor byte
    /// counters record them — matching simnet's convention of recording
    /// only the collective itself.
    pub fn barrier(&mut self) -> Result<(), WireError> {
        let t0 = Instant::now();
        let token = [0u8];
        for r in 1..self.size {
            let dst = (self.rank + r) % self.size;
            let src = (self.rank + self.size - r) % self.size;
            let body = self.exchange_frames(dst, &token, src)?;
            if body.len() != 1 {
                return Err(WireError::Protocol(format!(
                    "barrier token from rank {src} had {} bytes",
                    body.len()
                )));
            }
        }
        self.stats.other_collectives += 1;
        self.trace.collective(CollectiveOp::Barrier, 0, None);
        self.comm_seconds += t0.elapsed().as_secs_f64();
        Ok(())
    }

    /// Sum-allreduce of one f64 (folded in rank order — the same order
    /// simnet folds, so results are bitwise identical across transports).
    pub fn allreduce_sum(&mut self, v: f64) -> Result<f64, WireError> {
        Ok(self.all_gather(&[v])?.iter().sum())
    }

    /// Max-allreduce of one f64. The fold seeds with `-inf`, not
    /// `f64::MIN`: a finite seed would silently become the answer when
    /// every rank contributes `-inf` (the same bug class `sync_clocks`
    /// fixed on the simulated fabric), and the two transports must agree
    /// bitwise.
    pub fn allreduce_max(&mut self, v: f64) -> Result<f64, WireError> {
        Ok(self
            .all_gather(&[v])?
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max))
    }

    /// Sever only this rank's *outbound* half of the link to `peer`
    /// (subsequent writes toward `peer` fail; reads keep working) — the
    /// test seam for asserting that a dead outbound link is attributed
    /// to the destination, never to whichever rank we were reading from.
    pub fn sever_outbound(&mut self, peer: usize) {
        if let Some(s) = self.peers.get(peer).and_then(Option::as_ref) {
            let _ = s.shutdown(std::net::Shutdown::Write);
        }
    }

    /// Tear the mesh down explicitly (dropping does the same; this makes
    /// the intent visible at call sites and lets tests sever links).
    pub fn shutdown(&mut self) {
        for p in self.peers.iter_mut() {
            if let Some(s) = p.take() {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
        // Queued self-payloads belong to the aborted run; a rejoin must
        // not replay them into the next epoch.
        self.self_inbox.clear();
    }

    /// Re-wire the mesh for the next job epoch after a peer died: tear
    /// the current mesh down *first* (so peers still blocked on us
    /// observe EOF and fail over promptly — detection cascades instead
    /// of waiting out timeouts), then rejoin the rendezvous claiming
    /// this rank for `epoch + 1`. Returns the fresh control stream;
    /// stats and trace carry over (the trace records the epoch change
    /// via `Trace::rejoin` at the recovery driver's discretion).
    pub fn reconnect(&mut self) -> Result<TcpStream, WireError> {
        if self.rendezvous.is_empty() {
            return Err(WireError::Bootstrap(
                "mesh was built without a rendezvous address; cannot reconnect".into(),
            ));
        }
        self.shutdown();
        let next = self.epoch + 1;
        let boot = Bootstrap::rejoin(&self.rendezvous, self.rank, next, self.cfg)?;
        debug_assert_eq!(boot.size, self.size);
        self.peers = boot.peers;
        self.epoch = next;
        Ok(boot.control)
    }
}

impl Drop for WireComm {
    fn drop(&mut self) {
        self.shutdown();
    }
}
