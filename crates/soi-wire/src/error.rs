//! Failure taxonomy for the wire transport.
//!
//! Every operation on the transport has a deadline; nothing in this crate
//! blocks forever. The two failure shapes that matter operationally are
//! distinguished so callers (and tests) can tell a dead peer from a slow
//! one:
//!
//! * [`WireError::PeerLost`] — the TCP stream to a peer closed or reset:
//!   the process died or the connection was torn down.
//! * [`WireError::Timeout`] — the peer's socket is open but the operation
//!   did not complete within the configured deadline.

use std::fmt;
use std::time::Duration;

/// Everything that can go wrong on the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The connection to `peer` closed, reset, or broke mid-operation.
    PeerLost {
        /// The peer rank, when known (bootstrap failures may predate ranks).
        peer: Option<usize>,
        /// Underlying OS error text.
        detail: String,
    },
    /// An operation missed its deadline while the connection stayed up.
    Timeout {
        /// The peer rank, when known.
        peer: Option<usize>,
        /// Which operation timed out (`"recv"`, `"accept"`, ...).
        op: &'static str,
        /// The deadline that was exceeded.
        after: Duration,
    },
    /// The peer spoke, but not our protocol (bad magic, bad frame, ragged
    /// payload, duplicate rank, ...).
    Protocol(String),
    /// Rank bootstrap could not complete (bind/rendezvous/mesh wiring).
    Bootstrap(String),
    /// Any other I/O error.
    Io(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::PeerLost { peer: Some(p), detail } => {
                write!(f, "peer rank {p} lost: {detail}")
            }
            WireError::PeerLost { peer: None, detail } => write!(f, "peer lost: {detail}"),
            WireError::Timeout { peer: Some(p), op, after } => {
                write!(f, "{op} from rank {p} timed out after {after:?}")
            }
            WireError::Timeout { peer: None, op, after } => {
                write!(f, "{op} timed out after {after:?}")
            }
            WireError::Protocol(msg) => write!(f, "wire protocol violation: {msg}"),
            WireError::Bootstrap(msg) => write!(f, "rank bootstrap failed: {msg}"),
            WireError::Io(msg) => write!(f, "wire i/o: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Classify an OS error from an operation against `peer` into the
/// taxonomy above. `op` and `deadline` label timeout errors.
pub(crate) fn classify_io(
    e: std::io::Error,
    peer: Option<usize>,
    op: &'static str,
    deadline: Duration,
) -> WireError {
    use std::io::ErrorKind::*;
    match e.kind() {
        WouldBlock | TimedOut => WireError::Timeout { peer, op, after: deadline },
        UnexpectedEof | ConnectionReset | ConnectionAborted | BrokenPipe | NotConnected => {
            WireError::PeerLost { peer, detail: e.to_string() }
        }
        _ => WireError::Io(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_peer() {
        let e = WireError::PeerLost { peer: Some(3), detail: "reset".into() };
        assert!(e.to_string().contains("rank 3"));
        let e = WireError::Timeout {
            peer: Some(1),
            op: "recv",
            after: Duration::from_millis(250),
        };
        assert!(e.to_string().contains("recv"));
        assert!(e.to_string().contains("250"));
    }

    #[test]
    fn io_classification() {
        use std::io::{Error, ErrorKind};
        let d = Duration::from_secs(1);
        assert!(matches!(
            classify_io(Error::from(ErrorKind::TimedOut), Some(0), "recv", d),
            WireError::Timeout { .. }
        ));
        assert!(matches!(
            classify_io(Error::from(ErrorKind::WouldBlock), None, "recv", d),
            WireError::Timeout { .. }
        ));
        assert!(matches!(
            classify_io(Error::from(ErrorKind::UnexpectedEof), Some(2), "recv", d),
            WireError::PeerLost { peer: Some(2), .. }
        ));
        assert!(matches!(
            classify_io(Error::from(ErrorKind::ConnectionReset), None, "recv", d),
            WireError::PeerLost { .. }
        ));
        assert!(matches!(
            classify_io(Error::from(ErrorKind::PermissionDenied), None, "recv", d),
            WireError::Io(_)
        ));
    }
}
