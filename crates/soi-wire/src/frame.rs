//! Length-prefixed framing over a byte stream.
//!
//! Wire format of one frame:
//!
//! ```text
//! [tag: u8][len: u64 LE][payload: len bytes]
//! ```
//!
//! Tags distinguish the handful of message classes the transport speaks;
//! anything else on the stream is a [`WireError::Protocol`]. A hard cap on
//! `len` keeps a corrupt or hostile length prefix from driving an
//! unbounded allocation.

use crate::error::{classify_io, WireError};
use std::io::{Read, Write};
use std::time::Duration;

/// Worker → rendezvous: "I exist", carries the worker's mesh listen address.
pub const TAG_HELLO: u8 = 0x01;
/// Rendezvous → worker: rank assignment + full peer address table.
pub const TAG_WELCOME: u8 = 0x02;
/// Mesh handshake: each side states its rank on a fresh peer connection.
pub const TAG_IDENT: u8 = 0x03;
/// Bulk element payload between peers (point-to-point and collectives).
pub const TAG_DATA: u8 = 0x04;
/// Worker → rendezvous: final output block + phase times + trace.
pub const TAG_RESULT: u8 = 0x05;
/// Worker → rendezvous: fatal error report (payload = display string).
pub const TAG_ERROR: u8 = 0x06;

/// Upper bound on a single frame payload (256 MiB). Largest legitimate
/// frame is a RESULT carrying a rank's output block plus its trace; for
/// the sizes this repo targets that is a few MiB.
pub const MAX_FRAME: u64 = 256 << 20;

/// Write one frame. `deadline` labels the error if the stream's write
/// timeout fires.
pub fn write_frame<W: Write>(
    w: &mut W,
    tag: u8,
    payload: &[u8],
    peer: Option<usize>,
    deadline: Duration,
) -> Result<(), WireError> {
    let mut header = [0u8; 9];
    header[0] = tag;
    header[1..9].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    w.write_all(&header)
        .and_then(|_| w.write_all(payload))
        .and_then(|_| w.flush())
        .map_err(|e| classify_io(e, peer, "send", deadline))
}

/// Read one frame, returning `(tag, payload)`.
pub fn read_frame<R: Read>(
    r: &mut R,
    peer: Option<usize>,
    deadline: Duration,
) -> Result<(u8, Vec<u8>), WireError> {
    let mut header = [0u8; 9];
    read_exact_classified(r, &mut header, peer, deadline)?;
    let tag = header[0];
    let len = u64::from_le_bytes(header[1..9].try_into().unwrap());
    if len > MAX_FRAME {
        return Err(WireError::Protocol(format!(
            "frame length {len} exceeds cap {MAX_FRAME}"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_classified(r, &mut payload, peer, deadline)?;
    Ok((tag, payload))
}

/// Read one frame into a reusable payload buffer (resized to the frame's
/// length, capacity kept across calls), returning the tag. The streamed
/// collectives call this once per sub-block; reusing `payload` keeps the
/// hot receive path allocation-free after the first frame.
pub fn read_frame_into<R: Read>(
    r: &mut R,
    payload: &mut Vec<u8>,
    peer: Option<usize>,
    deadline: Duration,
) -> Result<u8, WireError> {
    let mut header = [0u8; 9];
    read_exact_classified(r, &mut header, peer, deadline)?;
    let tag = header[0];
    let len = u64::from_le_bytes(header[1..9].try_into().unwrap());
    if len > MAX_FRAME {
        return Err(WireError::Protocol(format!(
            "frame length {len} exceeds cap {MAX_FRAME}"
        )));
    }
    payload.resize(len as usize, 0);
    read_exact_classified(r, payload, peer, deadline)?;
    Ok(tag)
}

/// Read one frame and insist on `want`; a different tag is a protocol
/// violation (reported with both tags for debuggability).
pub fn expect_frame<R: Read>(
    r: &mut R,
    want: u8,
    peer: Option<usize>,
    deadline: Duration,
) -> Result<Vec<u8>, WireError> {
    let (tag, payload) = read_frame(r, peer, deadline)?;
    if tag == want {
        return Ok(payload);
    }
    if tag == TAG_ERROR {
        // A peer reporting a fatal error is more informative than a
        // tag-mismatch complaint: surface its message directly.
        let msg = String::from_utf8_lossy(&payload).into_owned();
        return Err(WireError::Protocol(format!("peer reported error: {msg}")));
    }
    Err(WireError::Protocol(format!(
        "expected frame tag {want:#04x}, got {tag:#04x}"
    )))
}

/// `read_exact` with a zero-byte-read (clean EOF) mapped to `PeerLost`
/// and timeouts mapped by the usual classifier.
fn read_exact_classified<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    peer: Option<usize>,
    deadline: Duration,
) -> Result<(), WireError> {
    r.read_exact(buf).map_err(|e| classify_io(e, peer, "recv", deadline))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const D: Duration = Duration::from_secs(1);

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, TAG_DATA, b"hello", None, D).unwrap();
        write_frame(&mut buf, TAG_IDENT, &[], Some(2), D).unwrap();
        let mut c = Cursor::new(buf);
        let (t, p) = read_frame(&mut c, None, D).unwrap();
        assert_eq!((t, p.as_slice()), (TAG_DATA, b"hello".as_slice()));
        let (t, p) = read_frame(&mut c, None, D).unwrap();
        assert_eq!((t, p.len()), (TAG_IDENT, 0));
    }

    #[test]
    fn read_frame_into_reuses_the_buffer_across_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, TAG_DATA, b"first-longer", None, D).unwrap();
        write_frame(&mut buf, TAG_DATA, b"2nd", None, D).unwrap();
        let mut c = Cursor::new(buf);
        let mut payload = Vec::new();
        assert_eq!(read_frame_into(&mut c, &mut payload, None, D).unwrap(), TAG_DATA);
        assert_eq!(payload.as_slice(), b"first-longer");
        // Shorter second frame: contents replaced, no stale tail.
        assert_eq!(read_frame_into(&mut c, &mut payload, None, D).unwrap(), TAG_DATA);
        assert_eq!(payload.as_slice(), b"2nd");
    }

    #[test]
    fn oversized_length_is_rejected_without_allocating() {
        let mut buf = vec![TAG_DATA];
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        let e = read_frame(&mut Cursor::new(buf), None, D).unwrap_err();
        assert!(matches!(e, WireError::Protocol(_)));
    }

    #[test]
    fn truncated_stream_is_peer_lost() {
        let mut buf = Vec::new();
        write_frame(&mut buf, TAG_DATA, b"hello", Some(1), D).unwrap();
        buf.truncate(buf.len() - 2);
        let e = read_frame(&mut Cursor::new(buf), Some(1), D).unwrap_err();
        assert!(matches!(e, WireError::PeerLost { peer: Some(1), .. }));
    }

    #[test]
    fn expect_frame_flags_mismatch_and_relays_peer_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, TAG_DATA, b"x", None, D).unwrap();
        let e = expect_frame(&mut Cursor::new(buf), TAG_WELCOME, None, D).unwrap_err();
        assert!(e.to_string().contains("expected frame tag"));

        let mut buf = Vec::new();
        write_frame(&mut buf, TAG_ERROR, b"rank 3 exploded", None, D).unwrap();
        let e = expect_frame(&mut Cursor::new(buf), TAG_RESULT, None, D).unwrap_err();
        assert!(e.to_string().contains("rank 3 exploded"));
    }
}
