//! `soi-wire`: a real multi-process transport for the SOI FFT.
//!
//! Everything before this crate ran the distributed algorithm inside one
//! process — `soi-simnet` gives ranks as threads, channels as links, and
//! a virtual clock for time. The paper's headline claim is about a real
//! network, though: one all-to-all instead of three, because the exchange
//! dominates at scale. This crate is the transport that lets the same
//! `DistSoiFft` code run with every byte crossing the kernel's TCP stack:
//!
//! * [`bootstrap`] — how P anonymous processes become ranks `0..P`: a
//!   rendezvous listener assigns ranks in arrival order and hands out the
//!   peer address table; workers then wire a full mesh (connect down,
//!   accept up), every step deadline-bounded.
//! * [`frame`] — `[tag u8][len u64 LE][payload]` framing with a hard
//!   length cap; [`pod`] — explicit little-endian element codecs that
//!   round-trip `f64` bit-exactly (the cross-transport bitwise
//!   equivalence tests lean on this).
//! * [`comm::WireComm`] — the communicator: point-to-point send/recv,
//!   deadlock-free paired exchange (writer thread vs. finite TCP
//!   buffers), pairwise-exchange `all_to_all`/`all_to_allv`, barrier and
//!   allreduce, all with per-operation deadlines and
//!   [`WireError::PeerLost`]/[`WireError::Timeout`] instead of hangs. The
//!   trace conventions match `RankComm`, so `TraceSet::validate`'s
//!   conservation checks run unchanged on real captured traffic
//!   (`t_virt` is `None`: there is no virtual clock on a real network).
//! * [`loopback`] — an in-process harness (ranks as threads, payloads
//!   over real localhost sockets) used by the equivalence and
//!   kill-one-rank tests here and in `soi-dist`.
//! * [`service`] — the listener side for long-lived daemons
//!   (`soi serve`): framed connections with idle deadlines (a stalled
//!   client is a `Timeout`, a dead one a `PeerLost` — never a pinned
//!   reader thread), a locked cloneable writer half, and a shutdown
//!   token that wakes a blocking accept.
//!
//! The crate is std-only, like everything else in the workspace.

pub mod bootstrap;
pub mod comm;
pub mod error;
pub mod frame;
pub mod loopback;
pub mod pod;
pub mod service;

pub use bootstrap::{connect_with_backoff, Bootstrap, Rendezvous, WireConfig};
pub use comm::{WireComm, WireStats};
pub use error::WireError;
pub use loopback::{loopback_mesh, run_loopback};
pub use pod::{decode_slice, encode_slice, Pod};
pub use service::{ServiceConn, ServiceListener, ServiceWriter, ShutdownToken};
