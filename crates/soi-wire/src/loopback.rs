//! In-process loopback harness: a full P-rank mesh over real localhost
//! sockets, with ranks as threads.
//!
//! This is the testing backbone of the crate (and of the cross-transport
//! equivalence suite in `soi-dist`): every byte crosses the kernel's TCP
//! stack exactly as it would between processes, but setup/teardown is one
//! function call and a dead rank is simulated by dropping its
//! [`WireComm`].

use crate::bootstrap::{Bootstrap, Rendezvous, WireConfig};
use crate::comm::WireComm;
use crate::error::WireError;

/// Bootstrap a `p`-rank mesh on `127.0.0.1` and return the communicators
/// in rank order. Control streams are dropped (no launcher in the loop).
pub fn loopback_mesh(p: usize, cfg: WireConfig) -> Result<Vec<WireComm>, WireError> {
    let rv = Rendezvous::bind("127.0.0.1:0", cfg)?;
    let addr = rv.local_addr()?;
    std::thread::scope(|s| {
        let server = s.spawn(move || rv.serve(p));
        let workers: Vec<_> = (0..p)
            .map(|_| {
                let addr = addr.clone();
                s.spawn(move || Bootstrap::join(&addr, cfg))
            })
            .collect();
        server.join().expect("rendezvous thread panicked")?;
        let mut comms = Vec::with_capacity(p);
        for w in workers {
            let boot = w.join().expect("worker thread panicked")?;
            let (comm, _control) = WireComm::from_bootstrap(boot);
            comms.push(comm);
        }
        comms.sort_by_key(|c| c.rank());
        Ok(comms)
    })
}

/// Run `f(rank_comm)` on every rank of a fresh loopback mesh, one thread
/// per rank, and return the per-rank results in rank order. Panics in a
/// rank propagate.
pub fn run_loopback<R: Send>(
    p: usize,
    cfg: WireConfig,
    f: impl Fn(&mut WireComm) -> R + Sync,
) -> Result<Vec<R>, WireError> {
    let comms = loopback_mesh(p, cfg)?;
    let f = &f;
    let results = std::thread::scope(|s| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|mut c| s.spawn(move || { let r = f(&mut c); (c.rank(), r) }))
            .map(Some)
            .collect();
        let mut out: Vec<Option<R>> = (0..p).map(|_| None).collect();
        for h in handles.into_iter().flatten() {
            let (rank, r) = h.join().expect("loopback rank panicked");
            out[rank] = Some(r);
        }
        out.into_iter().map(|r| r.expect("missing rank result")).collect::<Vec<R>>()
    });
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::WireError;
    use soi_num::{c64, Complex64};
    use soi_trace::{CollectiveOp, Trace, TraceSet};
    use std::time::Duration;

    fn cfg() -> WireConfig {
        WireConfig {
            op_timeout: Duration::from_secs(10),
            connect_timeout: Duration::from_secs(10),
            ..WireConfig::default()
        }
    }

    #[test]
    fn all_to_all_permutes_blocks_like_the_spec() {
        let p = 4;
        let block = 3;
        let spectra = run_loopback(p, cfg(), |comm| {
            let me = comm.rank();
            // Element value encodes (sender, destination, offset).
            let send: Vec<u64> = (0..p * block)
                .map(|i| (me * 1000 + (i / block) * 100 + i % block) as u64)
                .collect();
            let mut recv = vec![0u64; p * block];
            comm.all_to_all(&send, &mut recv).unwrap();
            recv
        })
        .unwrap();
        for (me, recv) in spectra.iter().enumerate() {
            for src in 0..p {
                for k in 0..block {
                    assert_eq!(
                        recv[src * block + k],
                        (src * 1000 + me * 100 + k) as u64,
                        "rank {me} block from {src}"
                    );
                }
            }
        }
    }

    #[test]
    fn all_to_allv_concatenates_in_rank_order() {
        let p = 3;
        let outs = run_loopback(p, cfg(), |comm| {
            let me = comm.rank();
            // Rank r sends r+1 elements to each destination, stamped r*10+dst.
            let counts = vec![me + 1; p];
            let send: Vec<u64> = (0..p)
                .flat_map(|dst| std::iter::repeat((me * 10 + dst) as u64).take(me + 1))
                .collect();
            comm.all_to_allv(&send, &counts).unwrap()
        })
        .unwrap();
        for (me, out) in outs.iter().enumerate() {
            let mut want = Vec::new();
            for src in 0..p {
                want.extend(std::iter::repeat((src * 10 + me) as u64).take(src + 1));
            }
            assert_eq!(*out, want, "rank {me}");
        }
    }

    #[test]
    fn sendrecv_rings_and_reductions_agree() {
        let p = 4;
        let outs = run_loopback(p, cfg(), |comm| {
            let me = comm.rank();
            let right = (me + 1) % p;
            let left = (me + p - 1) % p;
            let halo = comm
                .sendrecv(right, &[c64(me as f64, 0.0)], left)
                .unwrap();
            let sum = comm.allreduce_sum(me as f64 + 0.5).unwrap();
            let max = comm.allreduce_max(me as f64).unwrap();
            comm.barrier().unwrap();
            (halo[0], sum, max)
        })
        .unwrap();
        for (me, (halo, sum, max)) in outs.iter().enumerate() {
            let left = (me + p - 1) % p;
            assert_eq!(halo.re, left as f64, "halo into rank {me}");
            assert_eq!(*sum, (0..p).map(|r| r as f64 + 0.5).sum::<f64>());
            assert_eq!(*max, (p - 1) as f64);
        }
    }

    #[test]
    fn broadcast_and_gather_move_payloads() {
        let p = 3;
        let outs = run_loopback(p, cfg(), |comm| {
            let me = comm.rank();
            let data = if me == 1 { vec![7u64, 8, 9] } else { Vec::new() };
            let bcast = comm.broadcast(1, data).unwrap();
            let gathered = comm.gather(0, &[me as u64, me as u64 * 2]).unwrap();
            (bcast, gathered)
        })
        .unwrap();
        for (me, (bcast, gathered)) in outs.iter().enumerate() {
            assert_eq!(*bcast, vec![7u64, 8, 9], "rank {me} broadcast");
            if me == 0 {
                assert_eq!(
                    gathered.as_deref(),
                    Some(&[0u64, 0, 1, 2, 2, 4][..]),
                    "root gather"
                );
            } else {
                assert!(gathered.is_none());
            }
        }
    }

    #[test]
    fn complex_payloads_cross_the_wire_bit_exactly() {
        let p = 2;
        let outs = run_loopback(p, cfg(), |comm| {
            let me = comm.rank();
            let xs: Vec<Complex64> = (0..64)
                .map(|i| c64((i as f64 * 0.37 + me as f64).sin(), (i as f64).cos() / 7.0))
                .collect();
            comm.sendrecv((me + 1) % p, &xs, (me + 1) % p).unwrap()
        })
        .unwrap();
        for me in 0..p {
            let other = (me + 1) % p;
            let want: Vec<Complex64> = (0..64)
                .map(|i| c64((i as f64 * 0.37 + other as f64).sin(), (i as f64).cos() / 7.0))
                .collect();
            for (a, b) in outs[me].iter().zip(&want) {
                assert_eq!(a.re.to_bits(), b.re.to_bits());
                assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
    }

    #[test]
    fn traced_traffic_passes_conservation_checks() {
        let p = 4;
        let streams = run_loopback(p, cfg(), |comm| {
            comm.set_trace(Trace::recording(comm.rank()));
            let send: Vec<f64> = (0..p * 2).map(|i| i as f64).collect();
            let mut recv = vec![0.0f64; p * 2];
            comm.all_to_all(&send, &mut recv).unwrap();
            comm.barrier().unwrap();
            let _ = comm.allreduce_sum(1.0).unwrap();
            comm.trace().drain()
        })
        .unwrap();
        let set = TraceSet::from_streams(streams);
        let summary = set.validate().expect("real traffic must conserve");
        assert_eq!(summary.ranks, p);
        assert_eq!(
            summary.collectives,
            vec![
                CollectiveOp::AllToAll,
                CollectiveOp::Barrier,
                CollectiveOp::AllGather
            ]
        );
        // p2p messages: all_to_all (p-1 per rank) + allgather (p-1 per rank).
        assert_eq!(summary.messages, (2 * p * (p - 1)) as u64);
    }

    #[test]
    fn stats_match_simnet_conventions() {
        let p = 4;
        let stats = run_loopback(p, cfg(), |comm| {
            let send: Vec<u64> = (0..p * 2).map(|i| i as u64).collect();
            let mut recv = vec![0u64; p * 2];
            comm.all_to_all(&send, &mut recv).unwrap();
            comm.barrier().unwrap();
            comm.stats()
        })
        .unwrap();
        for s in &stats {
            assert_eq!(s.all_to_alls, 1);
            assert_eq!(s.other_collectives, 1);
            // Each rank ships 2 u64 to each of p-1 peers; barrier tokens
            // are protocol and must not pollute byte counters.
            assert_eq!(s.bytes_sent, (2 * 8 * (p - 1)) as u64);
            assert_eq!(s.bytes_received, (2 * 8 * (p - 1)) as u64);
        }
    }

    #[test]
    fn killed_rank_surfaces_as_timely_error_not_hang() {
        let p = 3;
        let fast = WireConfig {
            op_timeout: Duration::from_millis(500),
            connect_timeout: Duration::from_secs(5),
            ..WireConfig::default()
        };
        let comms = loopback_mesh(p, fast).unwrap();
        let out = soi_testkit::kill_and_run(comms, p - 1, Duration::from_secs(10), |c| {
            let send: Vec<u64> = (0..p * 4).map(|i| i as u64).collect();
            let mut recv = vec![0u64; p * 4];
            c.all_to_all(&send, &mut recv)
        });
        for e in &out.errors {
            assert!(
                matches!(e, WireError::PeerLost { .. } | WireError::Timeout { .. }),
                "got {e:?}"
            );
        }
    }

    #[test]
    fn severed_outbound_link_blames_the_destination() {
        // Rank 0 cuts only its *write* half toward rank 2 and then joins
        // the collective. Its failure must name rank 2 — the destination
        // the writer could not reach — not whichever source the read loop
        // happened to be waiting on when the schedule unravelled.
        let p = 3;
        let fast = WireConfig {
            op_timeout: Duration::from_millis(500),
            connect_timeout: Duration::from_secs(5),
            ..WireConfig::default()
        };
        let results = run_loopback(p, fast, |comm| {
            if comm.rank() == 0 {
                comm.sever_outbound(2);
            }
            let send: Vec<u64> = (0..p * 2).map(|i| i as u64).collect();
            let mut recv = vec![0u64; p * 2];
            comm.all_to_all(&send, &mut recv)
        })
        .unwrap();
        match &results[0] {
            Err(WireError::PeerLost { peer: Some(2), .. })
            | Err(WireError::Timeout { peer: Some(2), .. }) => {}
            other => panic!("rank 0 must blame destination 2, got {other:?}"),
        }
        // Rank 1 is untouched by the cut: rank 0's writer streams the
        // frame to rank 1 before it trips over the dead link to rank 2.
        assert!(results[1].is_ok(), "rank 1 got {:?}", results[1]);
        // Rank 2 observes rank 0's half-closed stream as a lost peer 0.
        match &results[2] {
            Err(WireError::PeerLost { peer: Some(0), .. })
            | Err(WireError::Timeout { peer: Some(0), .. }) => {}
            other => panic!("rank 2 must blame source 0, got {other:?}"),
        }
    }

    #[test]
    fn segmented_exchange_keeps_stats_and_conservation() {
        let p = 3;
        let nseg = 2;
        let rows = 4;
        let outs = run_loopback(p, cfg(), |comm| {
            comm.set_trace(Trace::recording(comm.rank()));
            let me = comm.rank();
            let send: Vec<f64> =
                (0..p * nseg * rows).map(|i| (me * 1000 + i) as f64).collect();
            let mut recv = vec![0.0f64; p * nseg * rows];
            let mut segs_seen = Vec::new();
            comm.all_to_all_seg(&send, &mut recv, nseg, &mut |si, seg, clock| {
                assert!(clock.is_none(), "wire has no simulated clock");
                assert_eq!(seg.len(), p * rows);
                segs_seen.push(si);
            })
            .unwrap();
            (comm.stats(), comm.trace().drain(), segs_seen)
        })
        .unwrap();
        let mut streams = Vec::new();
        for (me, (stats, stream, segs)) in outs.into_iter().enumerate() {
            assert_eq!(segs, vec![0, 1], "rank {me} callback order");
            assert_eq!(stats.all_to_alls, 1);
            // (p-1) peers × nseg sub-blocks × rows f64 each way; the
            // self segment never touches the wire.
            assert_eq!(stats.bytes_sent, ((p - 1) * nseg * rows * 8) as u64);
            assert_eq!(stats.bytes_received, ((p - 1) * nseg * rows * 8) as u64);
            streams.push(stream);
        }
        let set = TraceSet::from_streams(streams);
        let summary = set.validate().expect("segmented traffic must conserve");
        assert_eq!(summary.collectives, vec![CollectiveOp::AllToAll]);
        assert_eq!(summary.messages, (p * (p - 1) * nseg) as u64);
    }

    #[test]
    fn large_paired_exchange_does_not_deadlock() {
        // Two ranks exchange blocks far larger than any socket buffer;
        // without the writer thread this deadlocks with both sides stuck
        // in write_all.
        let p = 2;
        let n = 1 << 19; // 8 MiB of u64 per direction
        let outs = run_loopback(p, cfg(), |comm| {
            let me = comm.rank();
            let xs: Vec<u64> = (0..n).map(|i| (me as u64) << 32 | i as u64).collect();
            comm.sendrecv((me + 1) % p, &xs, (me + 1) % p).unwrap().len()
        })
        .unwrap();
        assert_eq!(outs, vec![n, n]);
    }
}
