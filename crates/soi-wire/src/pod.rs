//! Byte codecs: plain-old-data element encoding and a tiny cursor pair
//! for structured control payloads.
//!
//! Everything on the wire is explicit little-endian — no `transmute`, no
//! layout assumptions — so a trace captured on one architecture replays
//! on another and `f64` payloads round-trip *bit-exactly* (the
//! cross-transport bitwise-equivalence tests depend on this).

use crate::error::WireError;
use soi_num::Complex64;

/// A fixed-size element that can cross the wire. `Sync` because the
/// streamed collectives encode from a shared `&[T]` on a writer thread
/// while the caller's thread decodes.
pub trait Pod: Copy + Send + Sync + 'static {
    /// Encoded size in bytes.
    const BYTES: usize;
    /// Append the little-endian encoding to `out`.
    fn write_le(self, out: &mut Vec<u8>);
    /// Decode from exactly [`Pod::BYTES`] bytes.
    fn read_le(b: &[u8]) -> Self;
}

impl Pod for u8 {
    const BYTES: usize = 1;
    fn write_le(self, out: &mut Vec<u8>) {
        out.push(self);
    }
    fn read_le(b: &[u8]) -> Self {
        b[0]
    }
}

impl Pod for u32 {
    const BYTES: usize = 4;
    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn read_le(b: &[u8]) -> Self {
        u32::from_le_bytes(b[..4].try_into().unwrap())
    }
}

impl Pod for u64 {
    const BYTES: usize = 8;
    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn read_le(b: &[u8]) -> Self {
        u64::from_le_bytes(b[..8].try_into().unwrap())
    }
}

impl Pod for f64 {
    const BYTES: usize = 8;
    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn read_le(b: &[u8]) -> Self {
        f64::from_bits(u64::from_le_bytes(b[..8].try_into().unwrap()))
    }
}

impl Pod for Complex64 {
    const BYTES: usize = 16;
    fn write_le(self, out: &mut Vec<u8>) {
        self.re.write_le(out);
        self.im.write_le(out);
    }
    fn read_le(b: &[u8]) -> Self {
        Complex64::new(f64::read_le(&b[..8]), f64::read_le(&b[8..16]))
    }
}

/// Encode a slice of elements back-to-back.
pub fn encode_slice<T: Pod>(xs: &[T]) -> Vec<u8> {
    let mut out = Vec::with_capacity(xs.len() * T::BYTES);
    for &x in xs {
        x.write_le(&mut out);
    }
    out
}

/// Encode a slice into a reusable buffer (cleared first, capacity kept) —
/// the allocation-free path the streamed collectives use per frame.
pub fn encode_into<T: Pod>(xs: &[T], out: &mut Vec<u8>) {
    out.clear();
    out.reserve(xs.len() * T::BYTES);
    for &x in xs {
        x.write_le(out);
    }
}

/// Decode a payload of back-to-back elements directly into a caller
/// slice; the byte length must match `out.len() * T::BYTES` exactly.
pub fn decode_into<T: Pod>(b: &[u8], out: &mut [T]) -> Result<(), WireError> {
    if b.len() != out.len() * T::BYTES {
        return Err(WireError::Protocol(format!(
            "payload of {} bytes does not fill {} elements of {} bytes",
            b.len(),
            out.len(),
            T::BYTES
        )));
    }
    for (dst, chunk) in out.iter_mut().zip(b.chunks_exact(T::BYTES)) {
        *dst = T::read_le(chunk);
    }
    Ok(())
}

/// Decode a payload of back-to-back elements; the length must divide
/// evenly or the frame is malformed.
pub fn decode_slice<T: Pod>(b: &[u8]) -> Result<Vec<T>, WireError> {
    if b.len() % T::BYTES != 0 {
        return Err(WireError::Protocol(format!(
            "payload of {} bytes is not a multiple of element size {}",
            b.len(),
            T::BYTES
        )));
    }
    Ok(b.chunks_exact(T::BYTES).map(T::read_le).collect())
}

/// Append-side cursor for structured control payloads (HELLO/WELCOME/...).
#[derive(Debug, Default)]
pub struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    /// An empty payload.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a `u32`.
    pub fn u32(mut self, v: u32) -> Self {
        v.write_le(&mut self.buf);
        self
    }

    /// Append a `u64`.
    pub fn u64(mut self, v: u64) -> Self {
        v.write_le(&mut self.buf);
        self
    }

    /// Append an `f64` (bit-exact).
    pub fn f64(mut self, v: f64) -> Self {
        v.write_le(&mut self.buf);
        self
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(mut self, s: &str) -> Self {
        (s.len() as u32).write_le(&mut self.buf);
        self.buf.extend_from_slice(s.as_bytes());
        self
    }

    /// Append a length-prefixed byte blob.
    pub fn bytes(mut self, b: &[u8]) -> Self {
        (b.len() as u64).write_le(&mut self.buf);
        self.buf.extend_from_slice(b);
        self
    }

    /// The finished payload.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Read-side cursor over a control payload.
#[derive(Debug)]
pub struct PayloadReader<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    /// Cursor at the start of `b`.
    pub fn new(b: &'a [u8]) -> Self {
        Self { b, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.b.len() {
            return Err(WireError::Protocol(format!(
                "payload truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.b.len()
            )));
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::read_le(self.take(4)?))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::read_le(self.take(8)?))
    }

    /// Read an `f64` (bit-exact).
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::read_le(self.take(8)?))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let n = self.u32()? as usize;
        let s = self.take(n)?;
        String::from_utf8(s.to_vec())
            .map_err(|_| WireError::Protocol("non-UTF-8 string in payload".into()))
    }

    /// Read a length-prefixed byte blob.
    pub fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.u64()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.b.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_num::c64;

    #[test]
    fn slices_roundtrip_bitwise() {
        let xs: Vec<Complex64> = (0..17)
            .map(|i| c64((i as f64 * 0.1).sin() / 3.0, -(i as f64) * 0.7))
            .collect();
        let back: Vec<Complex64> = decode_slice(&encode_slice(&xs)).unwrap();
        assert_eq!(back.len(), xs.len());
        for (a, b) in xs.iter().zip(&back) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        let us: Vec<u64> = vec![0, 1, u64::MAX, 42];
        assert_eq!(decode_slice::<u64>(&encode_slice(&us)).unwrap(), us);
        let bs: Vec<u8> = vec![0, 255, 7];
        assert_eq!(decode_slice::<u8>(&encode_slice(&bs)).unwrap(), bs);
    }

    #[test]
    fn ragged_payload_is_a_protocol_error() {
        let e = decode_slice::<u64>(&[1, 2, 3]).unwrap_err();
        assert!(matches!(e, WireError::Protocol(_)));
    }

    #[test]
    fn reusable_buffer_codec_roundtrips_bitwise() {
        let xs: Vec<Complex64> = (0..9)
            .map(|i| c64((i as f64 * 0.3).cos(), (i as f64 * 1.7).sin()))
            .collect();
        let mut buf = vec![0xAAu8; 4]; // stale contents must be discarded
        encode_into(&xs, &mut buf);
        assert_eq!(buf, encode_slice(&xs));
        let mut out = vec![Complex64::ZERO; xs.len()];
        decode_into(&buf, &mut out).unwrap();
        for (a, b) in xs.iter().zip(&out) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        // Length mismatch (either direction) is a protocol error.
        let mut short = vec![Complex64::ZERO; xs.len() - 1];
        assert!(matches!(
            decode_into(&buf, &mut short),
            Err(WireError::Protocol(_))
        ));
        let mut long = vec![Complex64::ZERO; xs.len() + 1];
        assert!(matches!(
            decode_into(&buf, &mut long),
            Err(WireError::Protocol(_))
        ));
    }

    #[test]
    fn special_floats_survive() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0, f64::MIN_POSITIVE] {
            let enc = encode_slice(&[v]);
            let dec: Vec<f64> = decode_slice(&enc).unwrap();
            assert_eq!(dec[0].to_bits(), v.to_bits());
        }
    }

    #[test]
    fn payload_cursors_roundtrip() {
        let p = PayloadWriter::new()
            .u32(7)
            .str("127.0.0.1:9000")
            .u64(1 << 40)
            .f64(0.1 + 0.2)
            .bytes(&[9, 8, 7])
            .finish();
        let mut r = PayloadReader::new(&p);
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.str().unwrap(), "127.0.0.1:9000");
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.f64().unwrap().to_bits(), (0.1 + 0.2f64).to_bits());
        assert_eq!(r.bytes().unwrap(), vec![9, 8, 7]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_payload_reports_protocol_error() {
        let p = PayloadWriter::new().u32(1).finish();
        let mut r = PayloadReader::new(&p);
        let _ = r.u32().unwrap();
        assert!(matches!(r.u64(), Err(WireError::Protocol(_))));
    }
}
