//! Service-side connection plumbing: a framed TCP listener for
//! long-lived daemons (`soi serve`), built on the same framing and error
//! taxonomy as the rank transport.
//!
//! What this adds over a bare `TcpListener`:
//!
//! * **Idle deadlines on the read side.** A server reader thread waits
//!   at most `idle` for the client's next frame; a stalled client
//!   surfaces as [`WireError::Timeout`] (op `"recv"`) and a dead one —
//!   EOF, reset, broken pipe — as [`WireError::PeerLost`]. Either way
//!   the reader thread gets its loop back instead of being pinned
//!   forever by a half-open connection.
//! * **A cloneable, locked writer half.** Responses are produced on an
//!   executor thread while rejections are produced on the reader
//!   thread; [`ServiceWriter`] serializes whole frames under one lock so
//!   the two never interleave bytes on the stream.
//! * **A shutdown token that wakes `accept`.** A blocking accept has no
//!   deadline; [`ShutdownToken::fire`] sets the stop flag and then pokes
//!   the listener with a throwaway self-connection so the accept loop
//!   observes the flag promptly instead of waiting for the next real
//!   client.

use crate::error::{classify_io, WireError};
use crate::frame::{read_frame_into, write_frame};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A framed service listener with a cooperative shutdown token.
#[derive(Debug)]
pub struct ServiceListener {
    listener: TcpListener,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    op_timeout: Duration,
}

impl ServiceListener {
    /// Bind on `addr` (`host:0` picks a free port). `op_timeout` bounds
    /// every frame write on connections this listener accepts.
    pub fn bind(addr: &str, op_timeout: Duration) -> Result<Self, WireError> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| WireError::Bootstrap(format!("service bind {addr}: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| WireError::Bootstrap(format!("service local_addr: {e}")))?;
        Ok(Self {
            listener,
            addr,
            stop: Arc::new(AtomicBool::new(false)),
            op_timeout,
        })
    }

    /// The bound address (resolved port included).
    pub fn local_addr(&self) -> String {
        self.addr.to_string()
    }

    /// A token that unblocks [`Self::accept`] from any thread.
    pub fn shutdown_token(&self) -> ShutdownToken {
        ShutdownToken {
            stop: Arc::clone(&self.stop),
            addr: self.addr,
        }
    }

    /// Block for the next client connection. Returns `Ok(None)` once the
    /// shutdown token has fired — including when the wake-up arrives as
    /// the token's own throwaway connection.
    pub fn accept(&self) -> Result<Option<ServiceConn>, WireError> {
        loop {
            if self.stop.load(Ordering::SeqCst) {
                return Ok(None);
            }
            let (stream, _) = self
                .listener
                .accept()
                .map_err(|e| WireError::Io(format!("service accept: {e}")))?;
            if self.stop.load(Ordering::SeqCst) {
                // The shutdown token's wake-up poke (or a client racing
                // the shutdown); either way, stop accepting.
                return Ok(None);
            }
            return ServiceConn::new(stream, self.op_timeout).map(Some);
        }
    }
}

/// Wakes a [`ServiceListener`] out of a blocking accept. Cloneable and
/// idempotent.
#[derive(Debug, Clone)]
pub struct ShutdownToken {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ShutdownToken {
    /// Set the stop flag and poke the listener awake.
    pub fn fire(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Best effort: if the listener is already gone the flag alone
        // suffices.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
    }

    /// Whether the token has fired.
    pub fn fired(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

/// The read half of one accepted connection, plus a handle to its
/// shared writer. Owned by the connection's reader thread.
#[derive(Debug)]
pub struct ServiceConn {
    read: TcpStream,
    writer: ServiceWriter,
    buf: Vec<u8>,
    idle: Option<Duration>,
}

impl ServiceConn {
    fn new(stream: TcpStream, op_timeout: Duration) -> Result<Self, WireError> {
        stream
            .set_nodelay(true)
            .map_err(|e| WireError::Io(format!("service nodelay: {e}")))?;
        let write = stream
            .try_clone()
            .map_err(|e| WireError::Io(format!("service clone stream: {e}")))?;
        Ok(Self {
            read: stream,
            writer: ServiceWriter {
                stream: Arc::new(Mutex::new(write)),
                op_timeout,
            },
            buf: Vec::new(),
            idle: None,
        })
    }

    /// A cloneable writer for this connection (hand it to the executor).
    pub fn writer(&self) -> ServiceWriter {
        self.writer.clone()
    }

    /// Read the next frame, waiting at most `idle` for it to *start*
    /// arriving (and for each subsequent chunk). An idle or stalled
    /// client returns [`WireError::Timeout`]; a disconnected one
    /// [`WireError::PeerLost`]. The payload borrow is valid until the
    /// next call.
    pub fn read(&mut self, idle: Duration) -> Result<(u8, &[u8]), WireError> {
        let idle = idle.max(Duration::from_millis(1));
        if self.idle != Some(idle) {
            self.read
                .set_read_timeout(Some(idle))
                .map_err(|e| WireError::Io(format!("service read timeout: {e}")))?;
            self.idle = Some(idle);
        }
        let tag = read_frame_into(&mut self.read, &mut self.buf, None, idle)?;
        Ok((tag, self.buf.as_slice()))
    }
}

/// The locked write half of a connection: whole frames go out atomically
/// under the lock, so the reader thread (rejections, stats) and the
/// executor thread (responses) can both reply to one client.
#[derive(Debug, Clone)]
pub struct ServiceWriter {
    stream: Arc<Mutex<TcpStream>>,
    op_timeout: Duration,
}

impl ServiceWriter {
    /// Send one frame, bounded by the listener's `op_timeout`.
    pub fn send(&self, tag: u8, payload: &[u8]) -> Result<(), WireError> {
        let mut s = self.stream.lock().expect("service writer poisoned");
        s.set_write_timeout(Some(self.op_timeout))
            .map_err(|e| classify_io(e, None, "send", self.op_timeout))?;
        write_frame(&mut *s, tag, payload, None, self.op_timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{read_frame, write_frame, TAG_DATA, TAG_RESULT};
    use std::time::Instant;

    const OP: Duration = Duration::from_secs(5);

    fn listener() -> ServiceListener {
        ServiceListener::bind("127.0.0.1:0", OP).unwrap()
    }

    #[test]
    fn frames_roundtrip_through_an_accepted_connection() {
        let l = listener();
        let addr = l.local_addr();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            write_frame(&mut s, TAG_DATA, b"ping", None, OP).unwrap();
            s.set_read_timeout(Some(OP)).unwrap();
            let (tag, payload) = read_frame(&mut s, None, OP).unwrap();
            assert_eq!((tag, payload.as_slice()), (TAG_RESULT, b"pong".as_slice()));
        });
        let mut conn = l.accept().unwrap().expect("one connection");
        let (tag, payload) = conn.read(OP).unwrap();
        assert_eq!((tag, payload), (TAG_DATA, b"ping".as_slice()));
        conn.writer().send(TAG_RESULT, b"pong").unwrap();
        client.join().unwrap();
    }

    #[test]
    fn idle_client_surfaces_as_timeout_not_a_pinned_thread() {
        let l = listener();
        let addr = l.local_addr();
        let _quiet = TcpStream::connect(addr).unwrap();
        let mut conn = l.accept().unwrap().expect("one connection");
        let t0 = Instant::now();
        let e = conn.read(Duration::from_millis(50)).unwrap_err();
        assert!(matches!(e, WireError::Timeout { op: "recv", .. }), "{e}");
        assert!(t0.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn disconnected_client_surfaces_as_peer_lost() {
        let l = listener();
        let addr = l.local_addr();
        let c = TcpStream::connect(addr).unwrap();
        let mut conn = l.accept().unwrap().expect("one connection");
        drop(c); // clean close: zero-byte read at the header
        let e = conn.read(OP).unwrap_err();
        assert!(matches!(e, WireError::PeerLost { .. }), "{e}");
    }

    #[test]
    fn mid_frame_disconnect_is_peer_lost() {
        let l = listener();
        let addr = l.local_addr();
        let mut c = TcpStream::connect(addr).unwrap();
        let mut conn = l.accept().unwrap().expect("one connection");
        // Header promises 64 bytes; deliver 3 and vanish.
        let mut partial = vec![TAG_DATA];
        partial.extend_from_slice(&64u64.to_le_bytes());
        partial.extend_from_slice(b"abc");
        std::io::Write::write_all(&mut c, &partial).unwrap();
        drop(c);
        let e = conn.read(OP).unwrap_err();
        assert!(matches!(e, WireError::PeerLost { .. }), "{e}");
    }

    #[test]
    fn shutdown_token_unblocks_accept() {
        let l = listener();
        let token = l.shutdown_token();
        let waker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            token.fire();
        });
        let t0 = Instant::now();
        assert!(l.accept().unwrap().is_none());
        assert!(t0.elapsed() < Duration::from_secs(5));
        waker.join().unwrap();
        // Once fired, accept keeps returning None without blocking.
        assert!(l.shutdown_token().fired());
        assert!(l.accept().unwrap().is_none());
    }
}
