//! The Fig 7 lever at example scale: relax the accuracy target, watch B
//! shrink, the convolution get cheaper, and the measured error track the
//! design prediction.
//!
//! ```sh
//! cargo run --release --example accuracy_tradeoff
//! ```

use soi::core::{SoiFft, SoiParams};
use soi::num::complex::rel_l2_error;
use soi::num::stats::snr_db;
use soi::num::Complex64;
use soi::window::AccuracyPreset;
use std::time::Instant;

fn main() {
    let n = 1 << 15;
    let p = 8;
    let x: Vec<Complex64> = (0..n)
        .map(|j| Complex64::new((j as f64 * 0.61).sin(), (j as f64 * 0.17).cos()))
        .collect();
    let exact = soi::fft::fft_forward(&x);

    println!("accuracy preset        B   kappa   measured err   SNR      conv+pipeline time");
    println!("-------------------------------------------------------------------------");
    for preset in AccuracyPreset::ALL {
        let params = SoiParams::with_preset(n, p, preset).expect("params");
        let soi = SoiFft::new(&params).expect("plan");
        let cfg = soi.config();
        let t0 = Instant::now();
        let y = soi.transform(&x).expect("transform");
        let dt = t0.elapsed();
        let err = rel_l2_error(&y, &exact);
        let snr = snr_db(&y, &exact);
        println!(
            "{:<20} {:>4} {:>7.0}   {:>10.2e}   {:>6.0} dB   {dt:?}",
            preset.label(),
            cfg.b,
            cfg.kappa,
            err,
            snr
        );
        assert!(
            err < preset.target() * cfg.kappa * 100.0,
            "error {err:e} blew past the design envelope for {preset:?}"
        );
    }
    println!("\nEvery preset meets its design envelope; smaller B = faster convolution.");
    println!("Distributed, this is Fig 7: >2x over MKL at 10-digit accuracy.");
}
