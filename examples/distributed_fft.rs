//! The headline experiment at example scale: the single-all-to-all SOI
//! FFT vs the triple-all-to-all baseline on a simulated 8-node InfiniBand
//! fat-tree cluster, with real data movement and a per-phase time
//! breakdown.
//!
//! ```sh
//! cargo run --release --example distributed_fft
//! ```

use soi::core::SoiParams;
use soi::dist::{BaselineFft, ChargePolicy, ComputeRates, DistSoiFft, ExchangeVariant};
use soi::num::complex::rel_l2_error;
use soi::num::Complex64;
use soi::simnet::{Cluster, Fabric};

fn main() {
    let p = 8;
    let n = (1 << 15) * p; // 2^18 total points
    let m = n / p;
    let fabric = Fabric::endeavor_fat_tree();
    let policy = ChargePolicy::Rates(ComputeRates::paper_node());

    let x: Vec<Complex64> = (0..n)
        .map(|j| Complex64::new((j as f64 * 0.29).sin(), (j as f64 * 0.83).cos()))
        .collect();
    let exact = soi::fft::fft_forward(&x);

    println!("Simulated cluster: {p} nodes, {} fabric, N = 2^{:.0}\n", fabric.name(), (n as f64).log2());

    // --- SOI: one all-to-all. ---
    let params = SoiParams::full_accuracy(n, p).expect("params");
    let dist = DistSoiFft::new(&params).expect("plan");
    let (xr, distr) = (&x, &dist);
    let soi_out = Cluster::new(p, fabric.clone()).run(move |comm| {
        let local = &xr[comm.rank() * m..(comm.rank() + 1) * m];
        distr.run(comm, local, policy).expect("soi run")
    });
    let soi_y: Vec<Complex64> = soi_out.iter().flat_map(|((y, _), _)| y.clone()).collect();
    let soi_makespan = soi_out.iter().map(|(_, r)| r.sim_time).fold(0.0, f64::max);
    let (ref times, ref rep) = soi_out[0];
    let t = &times.1;
    println!("SOI (single all-to-all):");
    println!("  error vs exact FFT : {:.2e}", rel_l2_error(&soi_y, &exact));
    println!("  all-to-alls        : {}", rep.stats.all_to_alls);
    println!("  phase breakdown (rank 0, virtual seconds):");
    println!("    halo     {:.4}", t.halo);
    println!("    conv     {:.4}", t.conv);
    println!("    F_P      {:.4}", t.fft_small);
    println!("    pack     {:.4}", t.pack);
    println!("    exchange {:.4}", t.exchange);
    println!("    F_M'     {:.4}", t.fft_large);
    println!("    demod    {:.4}", t.scale);
    println!("  makespan: {soi_makespan:.4} s (virtual)\n");

    // --- Baseline: three all-to-alls. ---
    let plan = BaselineFft::new(n, p, ExchangeVariant::Collective);
    let planr = &plan;
    let base_out = Cluster::new(p, fabric).run(move |comm| {
        let local = &xr[comm.rank() * m..(comm.rank() + 1) * m];
        planr.run(comm, local, policy).expect("baseline run")
    });
    let base_y: Vec<Complex64> = base_out.iter().flat_map(|((y, _), _)| y.clone()).collect();
    let base_makespan = base_out.iter().map(|(_, r)| r.sim_time).fold(0.0, f64::max);
    let bt = &base_out[0].0 .1;
    println!("Baseline (triple all-to-all, the MKL/FFTW/FFTE decomposition):");
    println!("  error vs exact FFT : {:.2e}", rel_l2_error(&base_y, &exact));
    println!("  all-to-alls        : {}", base_out[0].1.stats.all_to_alls);
    println!(
        "  compute {:.4} s, exchanges {:.4} s ({:.0}% communication)",
        bt.compute(),
        bt.exchange,
        bt.comm_fraction() * 100.0
    );
    println!("  makespan: {base_makespan:.4} s (virtual)\n");

    println!(
        "Speedup (baseline/SOI): {:.2}x   [paper: up to ~2x depending on system & size]",
        base_makespan / soi_makespan
    );
}
