//! Quickstart: a full-accuracy SOI FFT on one process, checked against an
//! exact FFT.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use soi::core::{SoiFft, SoiParams};
use soi::num::complex::rel_l2_error;
use soi::num::Complex64;

fn main() {
    // 2^16 points split into 8 segments, 25% oversampling, full accuracy.
    let n = 1 << 16;
    let p = 8;
    let params = SoiParams::full_accuracy(n, p).expect("valid parameters");
    let soi = SoiFft::new(&params).expect("plan");
    let cfg = soi.config();
    println!("SOI FFT: N = {n}, P = {p} segments of M = {}", cfg.m);
    println!(
        "  oversampling mu/nu = {}/{} (beta = {:.2}) -> M' = {}, N' = {}",
        cfg.mu,
        cfg.nu,
        cfg.beta(),
        cfg.m_prime,
        cfg.n_prime
    );
    println!(
        "  window: tau = {:.3}, sigma = {:.1}, support B = {} blocks, kappa = {:.1}",
        cfg.window.tau, cfg.window.sigma, cfg.b, cfg.kappa
    );
    println!(
        "  predicted relative error ~ {:.1e}\n",
        cfg.predicted_error()
    );

    // A smooth multi-tone test signal.
    let x: Vec<Complex64> = (0..n)
        .map(|j| {
            let t = j as f64;
            Complex64::new((t * 0.37).sin() + 0.5 * (t * 1.91).cos(), (t * 0.11).cos())
        })
        .collect();

    let t0 = std::time::Instant::now();
    let y = soi.transform(&x).expect("transform");
    let soi_time = t0.elapsed();

    let t0 = std::time::Instant::now();
    let exact = soi::fft::fft_forward(&x);
    let fft_time = t0.elapsed();

    let err = rel_l2_error(&y, &exact);
    println!("relative L2 error vs exact FFT: {err:.3e}");
    println!("SOI transform: {soi_time:?}  |  plain FFT: {fft_time:?}");
    println!(
        "(Single-process SOI is pure overhead — its point is distributed: it trades\n\
         extra local compute for 3x less global communication. On the paper's\n\
         AVX node the extra compute is ~2x; on a scalar core it is larger.)"
    );
    assert!(err < 1e-12, "accuracy regression");
    println!("\nOK — SOI output matches the exact spectrum to full accuracy.");
}
