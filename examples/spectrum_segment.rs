//! The Fig 1 story, literally: pursue a *segment of interest* of a long
//! signal's spectrum without computing the rest of it.
//!
//! A radio-style workload: a wideband record contains a few narrowband
//! carriers; we only care about one sub-band. `transform_segment` runs
//! convolution → one M'-point FFT → demodulation, touching O(M'·BP) work
//! instead of a full N-point FFT, and (distributed) would need no global
//! exchange at all for a single segment.
//!
//! ```sh
//! cargo run --release --example spectrum_segment
//! ```

use soi::core::{SoiFft, SoiParams};
use soi::num::Complex64;

fn main() {
    let n = 1 << 16;
    let p = 16; // 16 segments of 4096 bins
    let params = SoiParams::full_accuracy(n, p).expect("params");
    let soi = SoiFft::new(&params).expect("plan");
    let m = soi.config().m;

    // Carriers at known bins, buried in a dense multi-tone background.
    let carriers = [(5_000usize, 1.0), (23_456, 0.7), (50_001, 0.4)];
    let x: Vec<Complex64> = (0..n)
        .map(|j| {
            let mut v = Complex64::new((j as f64 * 1.37).sin() * 0.01, 0.0);
            for &(k, a) in &carriers {
                v += Complex64::cis(2.0 * std::f64::consts::PI * (k * j % n) as f64 / n as f64)
                    .scale(a);
            }
            v
        })
        .collect();

    println!("N = {n} points, {p} segments of {m} bins each.\n");
    for &(k, amp) in &carriers {
        let s = k / m;
        let seg = soi.transform_segment(&x, s).expect("segment");
        // Peak within the segment.
        let (local_bin, mag) = seg
            .iter()
            .enumerate()
            .map(|(i, v)| (i, v.abs()))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        let found = s * m + local_bin;
        println!(
            "carrier near bin {k}: segment {s} -> peak at bin {found} (|Y| = {:.1}, expected {:.1})",
            mag,
            amp * n as f64
        );
        assert_eq!(found, k, "carrier not recovered at the right bin");
    }
    println!("\nAll carriers recovered by computing only their own segments —");
    println!("3 segments touched out of {p}; the other {} never computed.", p - 3);
}
