//! The paper's mathematics, executed: Theorem 1, the §8 exact
//! factorization, and the §8 compact-support window.
//!
//! ```sh
//! cargo run --release --example theorem_playground
//! ```

use soi::core::exact::exact_factorization_dft;
use soi::core::theorem::theorem1_sides;
use soi::core::SoiParams;
use soi::num::complex::{max_abs_diff, rel_l2_error};
use soi::num::Complex64;
use soi::window::family::Window;
use soi::window::{AccuracyPreset, CompactBumpWindow};

fn main() {
    // --- Theorem 1 (hybrid convolution theorem) on a random-ish vector.
    let params = SoiParams::with_preset(512, 2, AccuracyPreset::Digits10).unwrap();
    let cfg = params.resolve();
    let x: Vec<Complex64> = (0..cfg.n)
        .map(|j| Complex64::new((j as f64 * 0.9).sin(), (j as f64 * 0.23).cos()))
        .collect();
    let (lhs, rhs) = theorem1_sides(&cfg, &x, cfg.m_prime);
    println!("Theorem 1:  F_M'[(1/M')·Samp(x∗w; 1/M')]  vs  Peri(y·ŵ; M')");
    println!(
        "  N = {}, M' = {}: relative L2 difference = {:.2e}",
        cfg.n,
        cfg.m_prime,
        rel_l2_error(&lhs, &rhs)
    );

    // --- §8 exact factorization (the rect-window rederivation of [14]).
    let n = 64;
    let p = 4;
    let xs: Vec<Complex64> = (0..n)
        .map(|j| Complex64::new((j as f64 * 1.3).cos(), (j as f64 * 0.7).sin()))
        .collect();
    let via_framework = exact_factorization_dft(&xs, p);
    let exact = soi::fft::fft_forward(&xs);
    println!("\n§8 exact factorization (dense W^(exact), no approximation):");
    println!(
        "  F_{n} = (I_{p}⊗F_{})·P_perm·(I_{}⊗F_{p})·W^(exact):  max |Δ| = {:.2e}",
        n / p,
        n / p,
        max_abs_diff(&via_framework, &exact)
    );

    // --- §8 compact-support window: aliasing identically zero.
    let w = CompactBumpWindow::for_beta(0.6, 0.25);
    println!("\n§8 compact-support window (C∞ bump, support = [−3/4, 3/4]):");
    println!(
        "  ε(alias) at β=1/4 : {:e}  (identically zero by construction)",
        soi::window::metrics::alias_error(&w, 0.25)
    );
    println!(
        "  κ = {:.2}, H(t) decay: |H(10)| = {:.1e}, |H(30)| = {:.1e}",
        soi::window::metrics::kappa(&w),
        w.h_time(10.0).abs(),
        w.h_time(30.0).abs()
    );
    println!("  (C∞-but-not-analytic: faster than any polynomial, slower than a Gaussian —");
    println!("   the §8 locality/decay tradeoff in one line.)");
}
