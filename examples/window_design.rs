//! Explore the window design space of §4/§8: how (τ, σ, B) move with the
//! accuracy target and oversampling rate, and why the two-parameter
//! family beats the plain Gaussian.
//!
//! ```sh
//! cargo run --release --example window_design
//! ```

use soi::window::{design_gaussian, design_two_param, AccuracyPreset};

fn main() {
    println!("Accuracy presets (kappa capped at 100; used by all harnesses):");
    println!("  preset                  B   kappa    alias       trunc     k*(a+t)");
    for p in AccuracyPreset::ALL {
        match p.design(0.25) {
            Ok(d) => println!(
                "  {:<20} {:>4} {:>7.1}  {:.1e}  {:.1e}  {:.1e}",
                p.label(),
                d.b,
                d.kappa,
                d.alias,
                d.trunc,
                d.kappa * (d.alias + d.trunc)
            ),
            Err(e) => println!("  {:<20} {e}", p.label()),
        }
    }
    println!();
    println!("Two-parameter (tau, sigma) designs at beta = 1/4:");
    println!("  target      tau     sigma      B   kappa    alias       trunc");
    for digits in [6u32, 8, 10, 12, 14, 15] {
        let target = 10f64.powi(-(digits as i32));
        match design_two_param(0.25, target, 1000.0) {
            Ok(d) => println!(
                "  1e-{digits:<6} {:>6.3} {:>9.1} {:>4} {:>7.1}  {:.1e}  {:.1e}",
                d.window.tau, d.window.sigma, d.b, d.kappa, d.alias, d.trunc
            ),
            Err(e) => println!("  1e-{digits:<6} {e}"),
        }
    }

    println!("\nOne-parameter Gaussian at beta = 1/4 (paper §8: caps near 10 digits):");
    for digits in [6u32, 8, 10, 12] {
        let target = 10f64.powi(-(digits as i32));
        match design_gaussian(0.25, target, 1000.0) {
            Ok(d) => println!(
                "  1e-{digits:<3} sigma = {:>8.1}, B = {:>3}, kappa = {:.1}",
                d.window.sigma, d.b, d.kappa
            ),
            Err(e) => println!("  1e-{digits:<3} {e}"),
        }
    }

    println!("\nGaussian at beta = 1 (paper: full accuracy again possible):");
    match design_gaussian(1.0, 1e-14, 1000.0) {
        Ok(d) => println!(
            "  1e-14 sigma = {:>8.1}, B = {:>3}, kappa = {:.1}",
            d.window.sigma, d.b, d.kappa
        ),
        Err(e) => println!("  1e-14 {e}"),
    }

    println!("\nThe paper's headline point sits near B = 72, kappa < 1000, beta = 1/4.");
}
