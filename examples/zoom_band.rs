//! Zoom FFT via the SOI band API: inspect an arbitrary slice of a long
//! signal's spectrum at a fraction of the full transform's cost.
//!
//! A frequency-hopping carrier is tracked by zooming onto bands that are
//! *not* aligned to segment boundaries — the generalization
//! `transform_band` adds over the paper's per-segment pursuit.
//!
//! ```sh
//! cargo run --release --example zoom_band
//! ```

use soi::core::{SoiFft, SoiParams};
use soi::num::Complex64;
use soi::window::AccuracyPreset;

fn main() {
    let n = 1 << 16;
    let p = 16;
    let params = SoiParams::with_preset(n, p, AccuracyPreset::Digits12).expect("params");
    let soi = SoiFft::new(&params).expect("plan");
    let m = soi.config().m;

    // Carrier hops between three frequencies; we know them only roughly.
    let hops = [9_777usize, 31_003, 54_321];
    let x: Vec<Complex64> = (0..n)
        .map(|j| {
            let k = hops[(3 * j / n).min(2)];
            Complex64::cis(2.0 * std::f64::consts::PI * (k * j % n) as f64 / n as f64)
        })
        .collect();

    println!("N = {n}; zoom bands of {m} bins, placed anywhere (not segment-aligned):\n");
    for &guess in &hops {
        // Center a band on the guess — an arbitrary, unaligned offset.
        let k0 = guess.saturating_sub(m / 2);
        let t0 = std::time::Instant::now();
        let band = soi.transform_band(&x, k0).expect("band");
        let dt = t0.elapsed();
        let (off, mag) = band
            .iter()
            .enumerate()
            .map(|(i, v)| (i, v.abs()))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        println!(
            "band [{k0:>6}, {:>6}) computed in {dt:>10?}: peak at bin {:>6} (|Y| = {mag:.0})",
            k0 + m,
            k0 + off
        );
        assert_eq!(k0 + off, guess, "carrier not found where injected");
    }
    println!("\nEach hop located from one {m}-bin zoom band; the full {n}-point");
    println!("spectrum was never materialized.");
}
