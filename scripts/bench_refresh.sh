#!/usr/bin/env sh
# Refresh the committed performance baselines at full quality:
#   BENCH_pipeline.json  — threaded-scaling + per-phase breakdown
#                          (consumed by scripts/perf_gate.sh)
#   BENCH_kernels.json   — per-engine ns/point + fraction-of-peak
#
# Run on an idle machine and commit the updated JSON together with the
# change that moved the numbers. Timer knobs (SOI_BENCH_SAMPLES etc.)
# pass through; defaults are the benches' full-quality settings.

set -eu
cd "$(dirname "$0")/.."

echo "==> soi_pipeline (writes BENCH_pipeline.json)"
cargo bench --offline -p soi-bench --bench soi_pipeline

echo "==> kernel_report (writes BENCH_kernels.json)"
cargo bench --offline -p soi-bench --bench kernel_report

echo "==> done; review and commit BENCH_pipeline.json + BENCH_kernels.json"
