#!/usr/bin/env sh
# Per-phase performance gate: re-measure the pipeline phase breakdown
# (one traced serial pass at the baseline's N) and compare each phase's
# total against the committed BENCH_pipeline.json.
#
# Usage: scripts/perf_gate.sh
#
# Knobs:
#   SOI_PERF_TOL=25      allowed per-phase regression, percent
#   SOI_PERF_STRICT=0    1 = exit non-zero on regression (default: report only,
#                        so CI stays green on noisy runners while the report
#                        is still visible in the log)
#   SOI_PERF_FRESH=...   path for the fresh measurement
#                        (default target/perf_gate/BENCH_pipeline.json)
#   SOI_BENCH_SAMPLES    forwarded to the bench timer (default here: 5,
#                        lighter than the committed-baseline runs)
#
# The fresh run writes to a scratch file via SOI_BENCH_PIPELINE_OUT, never
# to the committed baseline it is compared against. If the baseline was
# recorded at a different N (e.g. a smoke-size override), the comparison
# is skipped with a notice instead of producing nonsense percentages.

set -eu
cd "$(dirname "$0")/.."

TOL="${SOI_PERF_TOL:-25}"
STRICT="${SOI_PERF_STRICT:-0}"
BASE="BENCH_pipeline.json"
FRESH="${SOI_PERF_FRESH:-target/perf_gate/BENCH_pipeline.json}"
# cargo runs bench executables with cwd = the package dir, so hand the
# bench an absolute output path.
case "$FRESH" in /*) ;; *) FRESH="$PWD/$FRESH" ;; esac

if [ ! -f "$BASE" ]; then
    echo "perf-gate: no committed $BASE baseline; nothing to compare"
    exit 0
fi

mkdir -p "$(dirname "$FRESH")"
echo "==> perf-gate: fresh phase measurement (writes $FRESH)"
SOI_BENCH_PIPELINE_OUT="$FRESH" SOI_BENCH_PIPELINE_ONLY=1 \
SOI_BENCH_SAMPLES="${SOI_BENCH_SAMPLES:-5}" \
    cargo bench --offline -q -p soi-bench --bench soi_pipeline

# `{"phase":"conv","total_ns":53805135}` -> `conv 53805135`
phases() {
    sed -n 's/.*"phase":"\([a-z_]*\)","total_ns":\([0-9][0-9]*\).*/\1 \2/p' "$1"
}
# top-level integer field, e.g. `"n": 1048576`
field() {
    sed -n 's/^  "'"$2"'": \([0-9][0-9]*\).*/\1/p' "$1" | head -n 1
}

bn="$(field "$BASE" n)"
fn="$(field "$FRESH" n)"
if [ "$bn" != "$fn" ]; then
    echo "perf-gate: baseline N=$bn != fresh N=$fn; comparison skipped"
    exit 0
fi

report="$(
    { phases "$BASE" | sed 's/^/B /'; phases "$FRESH" | sed 's/^/F /'; } |
    awk -v tol="$TOL" '
        $1 == "B" { base[$2] = $3; order[n++] = $2 }
        $1 == "F" { fresh[$2] = $3 }
        END {
            printf "  %-8s %14s %14s %9s\n", "phase", "baseline_ns", "fresh_ns", "delta"
            bad = ""
            for (i = 0; i < n; i++) {
                p = order[i]
                if (!(p in fresh)) { bad = bad " " p "(missing)"; continue }
                d = (fresh[p] - base[p]) / base[p] * 100
                printf "  %-8s %14d %14d %+8.1f%%\n", p, base[p], fresh[p], d
                if (d > tol) bad = bad " " p
            }
            if (bad != "") printf "REGRESSION:%s\n", bad
        }'
)"
echo "$report"
if echo "$report" | grep -q "^REGRESSION:"; then
    echo "perf-gate: phases above the ${TOL}% tolerance"
    if [ "$STRICT" = "1" ]; then
        echo "perf-gate: FAIL (SOI_PERF_STRICT=1)"
        exit 1
    fi
    echo "perf-gate: non-blocking (set SOI_PERF_STRICT=1 to enforce)"
else
    echo "perf-gate: OK — every phase within ${TOL}% of the committed baseline"
fi
