#!/usr/bin/env sh
# Performance gate: re-measure and compare against the committed
# baselines.
#
#   * pipeline phases — one traced serial pass at the baseline's N,
#     per-phase total_ns vs BENCH_pipeline.json
#   * kernel report — per-engine ns_per_point vs BENCH_kernels.json
#     (dispatch-dependent rows that exist only on some hosts, e.g. the
#     portable-conv ablation row, are skipped when absent)
#
# Usage: scripts/perf_gate.sh
#
# Knobs:
#   SOI_PERF_TOL=25      allowed regression per phase / per kernel, percent
#   SOI_PERF_STRICT=0    1 = exit non-zero on regression (default: report only,
#                        so CI stays green on noisy runners while the report
#                        is still visible in the log)
#   SOI_PERF_FRESH=...   path for the fresh pipeline measurement
#                        (default target/perf_gate/BENCH_pipeline.json)
#   SOI_PERF_KERNELS_FRESH=...  path for the fresh kernel measurement
#                        (default target/perf_gate/BENCH_kernels.json)
#   SOI_PERF_SERVE_FRESH=...  path for the fresh serve measurement
#                        (default target/perf_gate/BENCH_serve.json)
#   SOI_BENCH_SAMPLES    forwarded to the bench timer (default here: 5,
#                        lighter than the committed-baseline runs)
#
# Fresh runs write to scratch files via SOI_BENCH_*_OUT, never to the
# committed baselines they are compared against. If a baseline was
# recorded at a different N (e.g. a smoke-size override), that comparison
# is skipped with a notice instead of producing nonsense percentages.

set -eu
cd "$(dirname "$0")/.."

TOL="${SOI_PERF_TOL:-25}"
STRICT="${SOI_PERF_STRICT:-0}"
SAMPLES="${SOI_BENCH_SAMPLES:-5}"
FAILED=""

# top-level integer field, e.g. `"n": 1048576`
field() {
    sed -n 's/^  "'"$2"'": \([0-9][0-9]*\).*/\1/p' "$1" | head -n 1
}

check_report() {
    # $1 = section label; stdin = merged "B key value" / "F key value" lines
    report="$(awk -v tol="$TOL" '
        $1 == "B" { base[$2] = $3; order[n++] = $2 }
        $1 == "F" { fresh[$2] = $3 }
        END {
            printf "  %-24s %14s %14s %9s\n", "name", "baseline", "fresh", "delta"
            bad = ""
            for (i = 0; i < n; i++) {
                p = order[i]
                if (!(p in fresh)) {
                    printf "  %-24s %14s %14s %9s\n", p, base[p], "-", "skipped"
                    continue
                }
                d = (fresh[p] - base[p]) / base[p] * 100
                printf "  %-24s %14s %14s %+8.1f%%\n", p, base[p], fresh[p], d
                if (d > tol) bad = bad " " p
            }
            if (bad != "") printf "REGRESSION:%s\n", bad
        }')"
    echo "$report"
    if echo "$report" | grep -q "^REGRESSION:"; then
        echo "perf-gate[$1]: entries above the ${TOL}% tolerance"
        FAILED="$FAILED $1"
    else
        echo "perf-gate[$1]: OK — everything within ${TOL}% of the baseline"
    fi
}

# --- pipeline phase gate ---------------------------------------------------

BASE="BENCH_pipeline.json"
FRESH="${SOI_PERF_FRESH:-target/perf_gate/BENCH_pipeline.json}"
# cargo runs bench executables with cwd = the package dir, so hand the
# bench an absolute output path.
case "$FRESH" in /*) ;; *) FRESH="$PWD/$FRESH" ;; esac

if [ ! -f "$BASE" ]; then
    echo "perf-gate: no committed $BASE baseline; pipeline comparison skipped"
else
    mkdir -p "$(dirname "$FRESH")"
    echo "==> perf-gate: fresh phase measurement (writes $FRESH)"
    SOI_BENCH_PIPELINE_OUT="$FRESH" SOI_BENCH_PIPELINE_ONLY=1 \
    SOI_BENCH_SAMPLES="$SAMPLES" \
        cargo bench --offline -q -p soi-bench --bench soi_pipeline

    bn="$(field "$BASE" n)"
    fn="$(field "$FRESH" n)"
    if [ "$bn" != "$fn" ]; then
        echo "perf-gate: baseline N=$bn != fresh N=$fn; pipeline comparison skipped"
    else
        # `{"phase":"conv","total_ns":53805135}` -> `conv 53805135`, with
        # rows inside the `real_phases_ns` array prefixed `real_` so the
        # r2c pipeline's phases (same names) don't collide with the
        # complex ones.
        phases() {
            awk '
                /"real_phases_ns":/ { pre = "real_" }
                /^  "phases_ns":/   { pre = "" }
                match($0, /"phase":"[a-z_]*","total_ns":[0-9]*/) {
                    s = substr($0, RSTART, RLENGTH)
                    gsub(/"phase":"|","total_ns":/, " ", s)
                    split(s, f, " ")
                    print pre f[1], f[2]
                }' "$1"
        }
        # Worker-scaling medians from `results` / `real_results`:
        # `{"workers":1,"median_ns":24046731.0,...}` -> `into_w1 24046731`.
        # The real rows gate the r2c headline: if `real_into_w1` regresses
        # past tolerance while `into_w1` holds, the r2c speedup fell.
        medians() {
            awk '
                /"results": \[/      { pre = "into_w" }
                /"real_results": \[/ { pre = "real_into_w" }
                pre != "" && match($0, /"workers":[0-9]*,"median_ns":[0-9.]*/) {
                    s = substr($0, RSTART, RLENGTH)
                    gsub(/"workers":|"median_ns":/, "", s)
                    split(s, f, ",")
                    printf "%s%s %d\n", pre, f[1], f[2]
                }' "$1"
        }
        {
            phases "$BASE" | sed 's/^/B /'
            medians "$BASE" | sed 's/^/B /'
            phases "$FRESH" | sed 's/^/F /'
            medians "$FRESH" | sed 's/^/F /'
        } | check_report pipeline
    fi
fi

# --- kernel report gate ----------------------------------------------------

KBASE="BENCH_kernels.json"
KFRESH="${SOI_PERF_KERNELS_FRESH:-target/perf_gate/BENCH_kernels.json}"
case "$KFRESH" in /*) ;; *) KFRESH="$PWD/$KFRESH" ;; esac

if [ ! -f "$KBASE" ]; then
    echo "perf-gate: no committed $KBASE baseline; kernel comparison skipped"
else
    mkdir -p "$(dirname "$KFRESH")"
    echo "==> perf-gate: fresh kernel measurement (writes $KFRESH)"
    SOI_BENCH_KERNELS_OUT="$KFRESH" SOI_BENCH_SAMPLES="$SAMPLES" \
        cargo bench --offline -q -p soi-bench --bench kernel_report

    # `{"kernel":"stockham","n":16384,...,"ns_per_point":6.885,...}`
    #   -> `stockham/16384 6.885`
    kernels() {
        sed -n 's/.*"kernel":"\([^"]*\)","n":\([0-9][0-9]*\)[^}]*"ns_per_point":\([0-9.]*\).*/\1\/\2 \3/p' "$1"
    }
    { kernels "$KBASE" | sed 's/^/B /'; kernels "$KFRESH" | sed 's/^/F /'; } |
        check_report kernels
fi

# --- dist transport gate ---------------------------------------------------

DBASE="BENCH_dist.json"
DFRESH="${SOI_PERF_DIST_FRESH:-target/perf_gate/BENCH_dist.json}"
case "$DFRESH" in /*) ;; *) DFRESH="$PWD/$DFRESH" ;; esac

if [ ! -f "$DBASE" ]; then
    echo "perf-gate: no committed $DBASE baseline; dist comparison skipped"
else
    mkdir -p "$(dirname "$DFRESH")"
    echo "==> perf-gate: fresh dist measurement (writes $DFRESH)"
    SOI_BENCH_DIST_OUT="$DFRESH" \
        cargo bench --offline -q -p soi-bench --bench soi_dist

    bn="$(sed -n 's/.*"n": \([0-9][0-9]*\).*/\1/p' "$DBASE" | head -n 1)"
    fn="$(sed -n 's/.*"n": \([0-9][0-9]*\).*/\1/p' "$DFRESH" | head -n 1)"
    if [ "$bn" != "$fn" ]; then
        echo "perf-gate: baseline N=$bn != fresh N=$fn; dist comparison skipped"
    else
        # All-to-all rows: `{"...","bytes_per_rank":65536,"wire_ns_per_op":...}`
        #   -> `a2a_wire/65536 <ns>`; plus the overlap acceptance metric —
        # wire end-to-end `exchange + fft_large` seconds summed into one row.
        dist_rows() {
            sed -n 's/.*"bytes_per_rank":\([0-9][0-9]*\),"wire_ns_per_op":\([0-9][0-9]*\).*/a2a_wire\/\1 \2/p' "$1"
            awk 'match($0, /"wire_phases_s": *{[^}]*}/) {
                s = substr($0, RSTART, RLENGTH)
                ex = fl = -1
                if (match(s, /"exchange":[0-9.]+/))
                    ex = substr(s, RSTART + 11, RLENGTH - 11)
                if (match(s, /"fft_large":[0-9.]+/))
                    fl = substr(s, RSTART + 12, RLENGTH - 12)
                if (ex >= 0 && fl >= 0) printf "exchange+fft_large %.6f\n", ex + fl
            }' "$1"
        }
        { dist_rows "$DBASE" | sed 's/^/B /'; dist_rows "$DFRESH" | sed 's/^/F /'; } |
            check_report dist
    fi
fi

# --- serve latency gate ----------------------------------------------------

SBASE="BENCH_serve.json"
SFRESH="${SOI_PERF_SERVE_FRESH:-target/perf_gate/BENCH_serve.json}"
case "$SFRESH" in /*) ;; *) SFRESH="$PWD/$SFRESH" ;; esac

if [ ! -f "$SBASE" ]; then
    echo "perf-gate: no committed $SBASE baseline; serve comparison skipped"
else
    mkdir -p "$(dirname "$SFRESH")"
    echo "==> perf-gate: fresh serve measurement (writes $SFRESH)"
    SOI_BENCH_SERVE_OUT="$SFRESH" \
        cargo bench --offline -q -p soi-bench --bench serve_load

    bn="$(field "$SBASE" n)"
    fn="$(field "$SFRESH" n)"
    if [ "$bn" != "$fn" ]; then
        echo "perf-gate: baseline N=$bn != fresh N=$fn; serve comparison skipped"
    else
        # Load-ladder rows
        #   `{"x":0.5,...,"p50_us":10393,"p99_us":22257,...}`
        #     -> `serve_p50/0.5 10393` and `serve_p99/0.5 22257`
        # plus the batching ablation as `unbatched_over_batched` (the
        # inverse throughput ratio, so losing the batching win shows up
        # as an *increase* and trips the same one-sided tolerance).
        serve_rows() {
            sed -n 's/.*"x":\([0-9.]*\),[^}]*"p50_us":\([0-9.]*\).*/serve_p50\/\1 \2/p' "$1"
            sed -n 's/.*"x":\([0-9.]*\),[^}]*"p99_us":\([0-9.]*\).*/serve_p99\/\1 \2/p' "$1"
            sed -n 's/.*"unbatched_over_batched": \([0-9.]*\).*/unbatched_over_batched \1/p' "$1"
        }
        { serve_rows "$SBASE" | sed 's/^/B /'; serve_rows "$SFRESH" | sed 's/^/F /'; } |
            check_report serve
    fi
fi

# --- verdict ---------------------------------------------------------------

if [ -n "$FAILED" ]; then
    if [ "$STRICT" = "1" ]; then
        echo "perf-gate: FAIL (SOI_PERF_STRICT=1):$FAILED"
        exit 1
    fi
    echo "perf-gate: non-blocking regressions in:$FAILED (set SOI_PERF_STRICT=1 to enforce)"
fi
