#!/usr/bin/env sh
# Tier-1 verification, hermetic: build + test the whole workspace with no
# registry access. Any dependency leak outside the tree fails here first.
#
# Usage: scripts/verify.sh [--with-benches]
#
# Knobs:
#   SOI_TESTKIT_SEED=0x...   re-seed every property suite (default fixed)
#   SOI_TESTKIT_CASES=N      override per-property case counts
#   SOI_TESTKIT_REPLAY=0x... replay exactly one reported failing case

set -eu

cd "$(dirname "$0")/.."

echo "==> guard: [workspace.dependencies] must contain only path dependencies"
leaks="$(sed -n '/^\[workspace\.dependencies\]/,/^\[/p' Cargo.toml | grep -E '"[0-9]' || true)"
if [ -n "$leaks" ]; then
    echo "ERROR: registry dependency found in [workspace.dependencies]:" >&2
    echo "$leaks" >&2
    exit 1
fi

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline (root package: tier-1)"
cargo test -q --offline

echo "==> cargo test -q --offline --workspace (every crate)"
cargo test -q --offline --workspace

echo "==> determinism: two property-suite runs must exercise identical streams"
run_props() {
    cargo test -q --offline --test properties 2>&1 \
        | grep -E "^test result" | sed 's/; finished in.*//' || true
}
a="$(run_props)"
b="$(run_props)"
if [ "$a" != "$b" ]; then
    echo "ERROR: property suite results differ between consecutive runs" >&2
    echo "run 1: $a" >&2
    echo "run 2: $b" >&2
    exit 1
fi

echo "==> traced pipeline smoke: simulate --trace, then the conservation validator"
trace_file="${TMPDIR:-/tmp}/soi-verify-trace.$$.jsonl"
cargo run --release --offline -q -p soi-cli --bin soi -- \
    simulate --nodes 2 --points 2048 --fabric ethernet --trace "$trace_file"
cargo run --release --offline -q -p soi-cli --bin soi -- \
    trace-check --file "$trace_file"
rm -f "$trace_file"

echo "==> out-of-process smoke: 4-rank soi launch over localhost + trace-check"
wire_trace="${TMPDIR:-/tmp}/soi-verify-wire.$$.jsonl"
# Hard timeout: a transport regression must fail loudly, never hang the
# verification run. (Workers carry their own per-op deadlines too.)
if command -v timeout >/dev/null 2>&1; then launch_to="timeout 120"; else launch_to=""; fi
$launch_to cargo run --release --offline -q -p soi-cli --bin soi -- \
    launch --ranks 4 --n 65536 --p 8 --trace "$wire_trace"
cargo run --release --offline -q -p soi-cli --bin soi -- \
    trace-check --file "$wire_trace"
rm -f "$wire_trace"

echo "==> fault smoke: kill rank 1 at boundary 3, recover, trace-check the capture"
fault_trace="${TMPDIR:-/tmp}/soi-verify-fault.$$.jsonl"
# The worker aborts itself mid-run; the launcher must detect the death,
# respawn the rank into epoch 1, replay from checkpoints, and still
# produce a conservation-valid merged trace (with rejoin markers) and a
# bitwise-correct spectrum — all inside the hard timeout.
SOI_FAULT_PHASE=3 $launch_to cargo run --release --offline -q -p soi-cli --bin soi -- \
    launch --ranks 4 --n 65536 --p 8 --trace "$fault_trace"
cargo run --release --offline -q -p soi-cli --bin soi -- \
    trace-check --file "$fault_trace"
rm -f "$fault_trace"

echo "==> serve smoke: daemon on an ephemeral port, mixed verified requests, clean shutdown"
serve_log="${TMPDIR:-/tmp}/soi-verify-serve.$$.log"
./target/release/soi serve --addr 127.0.0.1:0 --threads 2 > "$serve_log" 2>&1 &
serve_pid=$!
# The daemon prints `serve    : listening on <addr>` once bound; poll for it.
serve_addr=""
i=0
while [ $i -lt 100 ]; do
    serve_addr="$(sed -n 's/^serve    : listening on //p' "$serve_log")"
    [ -n "$serve_addr" ] && break
    if ! kill -0 "$serve_pid" 2>/dev/null; then
        echo "ERROR: soi serve exited before binding:" >&2
        cat "$serve_log" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$serve_addr" ]; then
    echo "ERROR: soi serve never reported its listen address" >&2
    cat "$serve_log" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
# Every kind the protocol carries, each response checked bitwise against a
# locally computed reference; then a stats snapshot and a clean shutdown.
$launch_to ./target/release/soi request --addr "$serve_addr" \
    --n 16384 --p 4 --digits 10 --count 2 --check 1
$launch_to ./target/release/soi request --addr "$serve_addr" \
    --n 16384 --p 4 --digits 10 --segment 2 --check 1
$launch_to ./target/release/soi request --addr "$serve_addr" \
    --n 16384 --p 4 --digits 10 --band 1234 --check 1
$launch_to ./target/release/soi request --addr "$serve_addr" \
    --n 16384 --p 4 --digits 10 --input real --check 1
$launch_to ./target/release/soi request --addr "$serve_addr" \
    --n 16384 --p 4 --digits 10 --input real --band 777 --check 1
$launch_to ./target/release/soi serve --stats "$serve_addr"
$launch_to ./target/release/soi request --addr "$serve_addr" --shutdown 1
wait "$serve_pid"
rm -f "$serve_log"

echo "==> cargo build --release --offline -p soi-bench --benches"
cargo build --release --offline -p soi-bench --benches

echo "==> per-phase perf gate vs committed BENCH_pipeline.json"
if [ "${SOI_PERF_SKIP:-0}" = "1" ]; then
    echo "    skipped (SOI_PERF_SKIP=1)"
else
    # Non-blocking by default; SOI_PERF_STRICT=1 turns regressions into
    # failures. SOI_PERF_SKIP=1 skips the measurement entirely (used by
    # CI, which runs the gate as its own visible step).
    sh scripts/perf_gate.sh
fi

if [ "${1:-}" = "--with-benches" ]; then
    echo "==> smoke-run the harness-free benches (quick settings, small N)"
    # SOI_BENCH_PIPELINE_N keeps the threaded-scaling bench tiny; the
    # *_OUT overrides park smoke-quality outputs in target/ so the
    # committed BENCH_*.json baselines are never overwritten by a smoke
    # run (refresh them with scripts/bench_refresh.sh).
    mkdir -p target/bench_smoke
    SOI_BENCH_SAMPLES=3 SOI_BENCH_WARMUP_MS=2 SOI_BENCH_TARGET_MS=2 \
    SOI_BENCH_PIPELINE_N=16384 \
    SOI_BENCH_DIST_ITERS=2 SOI_BENCH_DIST_N=16384 \
    SOI_BENCH_FAULT_N=16384 SOI_BENCH_FAULT_SAMPLES=1 \
    SOI_BENCH_SERVE_N=4096 SOI_BENCH_SERVE_REQS=5 SOI_BENCH_SERVE_CLIENTS=4 \
    SOI_BENCH_PIPELINE_OUT="$PWD/target/bench_smoke/BENCH_pipeline.json" \
    SOI_BENCH_KERNELS_OUT="$PWD/target/bench_smoke/BENCH_kernels.json" \
    SOI_BENCH_DIST_OUT="$PWD/target/bench_smoke/BENCH_dist.json" \
    SOI_BENCH_FAULTS_OUT="$PWD/target/bench_smoke/BENCH_faults.json" \
    SOI_BENCH_SERVE_OUT="$PWD/target/bench_smoke/BENCH_serve.json" \
        cargo bench --offline -p soi-bench
fi

echo "==> verify OK"
