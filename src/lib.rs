//! # soi — low-communication 1-D FFT
//!
//! A from-scratch Rust reproduction of *“A framework for low-communication
//! 1-D FFT”* (Tang, Park, Kim, Petrov — SC 2012 Best Paper; Scientific
//! Programming 21 (2013) 181–195).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`num`] — complex arithmetic, special functions, double-double,
//!   quadrature, statistics ([`soi_num`]).
//! * [`fft`] — a complete sequential/batched FFT library ([`soi_fft`]).
//! * [`window`] — the paper's window-function design machinery
//!   ([`soi_window`]).
//! * [`simnet`] — a simulated distributed-memory machine with network
//!   performance models ([`soi_simnet`]).
//! * [`core`] — the SOI (segment-of-interest) FFT algorithm itself
//!   ([`soi_core`]).
//! * [`dist`] — the distributed single-all-to-all SOI FFT and the
//!   triple-all-to-all baseline ([`soi_dist`]).
//!
//! ## Quickstart
//!
//! ```
//! use soi::core::{SoiFft, SoiParams};
//! use soi::num::Complex64;
//!
//! // 1024-point FFT split into 4 segments, 25% oversampling, full accuracy.
//! let params = SoiParams::full_accuracy(1024, 4).unwrap();
//! let soi = SoiFft::new(&params).unwrap();
//! let x: Vec<Complex64> = (0..1024)
//!     .map(|j| Complex64::new((j as f64 * 0.37).sin(), (j as f64 * 0.11).cos()))
//!     .collect();
//! let y = soi.transform(&x).unwrap();
//!
//! // Matches an exact FFT to ~14 digits.
//! let exact = soi::fft::fft_forward(&x);
//! assert!(soi::num::complex::rel_l2_error(&y, &exact) < 1e-12);
//! ```

pub use soi_core as core;
pub use soi_dist as dist;
pub use soi_fft as fft;
pub use soi_num as num;
pub use soi_simnet as simnet;
pub use soi_window as window;

/// Workspace version string.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
