/root/repo/target/debug/deps/ablation_beta-3b013be6a8b6b62c.d: crates/soi-bench/src/bin/ablation_beta.rs

/root/repo/target/debug/deps/ablation_beta-3b013be6a8b6b62c: crates/soi-bench/src/bin/ablation_beta.rs

crates/soi-bench/src/bin/ablation_beta.rs:
