/root/repo/target/debug/deps/ablation_beta-916ca222d793a74c.d: crates/soi-bench/src/bin/ablation_beta.rs

/root/repo/target/debug/deps/ablation_beta-916ca222d793a74c: crates/soi-bench/src/bin/ablation_beta.rs

crates/soi-bench/src/bin/ablation_beta.rs:
