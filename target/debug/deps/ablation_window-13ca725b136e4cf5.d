/root/repo/target/debug/deps/ablation_window-13ca725b136e4cf5.d: crates/soi-bench/src/bin/ablation_window.rs

/root/repo/target/debug/deps/ablation_window-13ca725b136e4cf5: crates/soi-bench/src/bin/ablation_window.rs

crates/soi-bench/src/bin/ablation_window.rs:
