/root/repo/target/debug/deps/ablation_window-de6533de8d5d0f0d.d: crates/soi-bench/src/bin/ablation_window.rs

/root/repo/target/debug/deps/ablation_window-de6533de8d5d0f0d: crates/soi-bench/src/bin/ablation_window.rs

crates/soi-bench/src/bin/ablation_window.rs:
