/root/repo/target/debug/deps/analysis_74-46b2d4d5b897959a.d: crates/soi-bench/src/bin/analysis_74.rs

/root/repo/target/debug/deps/analysis_74-46b2d4d5b897959a: crates/soi-bench/src/bin/analysis_74.rs

crates/soi-bench/src/bin/analysis_74.rs:
