/root/repo/target/debug/deps/analysis_74-6175ec3b8836c4f2.d: crates/soi-bench/src/bin/analysis_74.rs

/root/repo/target/debug/deps/analysis_74-6175ec3b8836c4f2: crates/soi-bench/src/bin/analysis_74.rs

crates/soi-bench/src/bin/analysis_74.rs:
