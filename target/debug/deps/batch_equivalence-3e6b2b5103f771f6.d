/root/repo/target/debug/deps/batch_equivalence-3e6b2b5103f771f6.d: crates/soi-fft/tests/batch_equivalence.rs

/root/repo/target/debug/deps/batch_equivalence-3e6b2b5103f771f6: crates/soi-fft/tests/batch_equivalence.rs

crates/soi-fft/tests/batch_equivalence.rs:
