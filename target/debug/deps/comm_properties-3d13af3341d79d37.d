/root/repo/target/debug/deps/comm_properties-3d13af3341d79d37.d: crates/soi-simnet/tests/comm_properties.rs

/root/repo/target/debug/deps/comm_properties-3d13af3341d79d37: crates/soi-simnet/tests/comm_properties.rs

crates/soi-simnet/tests/comm_properties.rs:
