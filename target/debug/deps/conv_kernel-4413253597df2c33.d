/root/repo/target/debug/deps/conv_kernel-4413253597df2c33.d: crates/soi-bench/benches/conv_kernel.rs

/root/repo/target/debug/deps/conv_kernel-4413253597df2c33: crates/soi-bench/benches/conv_kernel.rs

crates/soi-bench/benches/conv_kernel.rs:
