/root/repo/target/debug/deps/cross_engine-bb3b0bdb7e80f4f8.d: tests/cross_engine.rs

/root/repo/target/debug/deps/cross_engine-bb3b0bdb7e80f4f8: tests/cross_engine.rs

tests/cross_engine.rs:
