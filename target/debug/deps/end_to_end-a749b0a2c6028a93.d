/root/repo/target/debug/deps/end_to_end-a749b0a2c6028a93.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-a749b0a2c6028a93: tests/end_to_end.rs

tests/end_to_end.rs:
