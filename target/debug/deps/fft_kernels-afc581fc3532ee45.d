/root/repo/target/debug/deps/fft_kernels-afc581fc3532ee45.d: crates/soi-bench/benches/fft_kernels.rs

/root/repo/target/debug/deps/fft_kernels-afc581fc3532ee45: crates/soi-bench/benches/fft_kernels.rs

crates/soi-bench/benches/fft_kernels.rs:
