/root/repo/target/debug/deps/fig5-7641437d096ea0b8.d: crates/soi-bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-7641437d096ea0b8: crates/soi-bench/src/bin/fig5.rs

crates/soi-bench/src/bin/fig5.rs:
