/root/repo/target/debug/deps/fig5-c8cb67b6de68308e.d: crates/soi-bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-c8cb67b6de68308e: crates/soi-bench/src/bin/fig5.rs

crates/soi-bench/src/bin/fig5.rs:
