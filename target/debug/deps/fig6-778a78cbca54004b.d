/root/repo/target/debug/deps/fig6-778a78cbca54004b.d: crates/soi-bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-778a78cbca54004b: crates/soi-bench/src/bin/fig6.rs

crates/soi-bench/src/bin/fig6.rs:
