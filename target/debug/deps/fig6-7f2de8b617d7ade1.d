/root/repo/target/debug/deps/fig6-7f2de8b617d7ade1.d: crates/soi-bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-7f2de8b617d7ade1: crates/soi-bench/src/bin/fig6.rs

crates/soi-bench/src/bin/fig6.rs:
