/root/repo/target/debug/deps/fig7-a0857275edf4fef8.d: crates/soi-bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-a0857275edf4fef8: crates/soi-bench/src/bin/fig7.rs

crates/soi-bench/src/bin/fig7.rs:
