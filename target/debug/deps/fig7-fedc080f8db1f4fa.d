/root/repo/target/debug/deps/fig7-fedc080f8db1f4fa.d: crates/soi-bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-fedc080f8db1f4fa: crates/soi-bench/src/bin/fig7.rs

crates/soi-bench/src/bin/fig7.rs:
