/root/repo/target/debug/deps/fig8-b91d55ec97fd97ed.d: crates/soi-bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-b91d55ec97fd97ed: crates/soi-bench/src/bin/fig8.rs

crates/soi-bench/src/bin/fig8.rs:
