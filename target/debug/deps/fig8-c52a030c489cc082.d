/root/repo/target/debug/deps/fig8-c52a030c489cc082.d: crates/soi-bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-c52a030c489cc082: crates/soi-bench/src/bin/fig8.rs

crates/soi-bench/src/bin/fig8.rs:
