/root/repo/target/debug/deps/fig9-0e0a0b650760ff07.d: crates/soi-bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-0e0a0b650760ff07: crates/soi-bench/src/bin/fig9.rs

crates/soi-bench/src/bin/fig9.rs:
