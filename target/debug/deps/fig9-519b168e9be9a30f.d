/root/repo/target/debug/deps/fig9-519b168e9be9a30f.d: crates/soi-bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-519b168e9be9a30f: crates/soi-bench/src/bin/fig9.rs

crates/soi-bench/src/bin/fig9.rs:
