/root/repo/target/debug/deps/gen_golden_tmp-cc9fbc3a6d14065f.d: tests/gen_golden_tmp.rs

/root/repo/target/debug/deps/gen_golden_tmp-cc9fbc3a6d14065f: tests/gen_golden_tmp.rs

tests/gen_golden_tmp.rs:
