/root/repo/target/debug/deps/golden-289b60f1b7549098.d: tests/golden.rs

/root/repo/target/debug/deps/golden-289b60f1b7549098: tests/golden.rs

tests/golden.rs:
