/root/repo/target/debug/deps/model_check-0a7ade8640b396a3.d: crates/soi-bench/src/bin/model_check.rs

/root/repo/target/debug/deps/model_check-0a7ade8640b396a3: crates/soi-bench/src/bin/model_check.rs

crates/soi-bench/src/bin/model_check.rs:
