/root/repo/target/debug/deps/model_check-d9f1ad1c6ebfea87.d: crates/soi-bench/src/bin/model_check.rs

/root/repo/target/debug/deps/model_check-d9f1ad1c6ebfea87: crates/soi-bench/src/bin/model_check.rs

crates/soi-bench/src/bin/model_check.rs:
