/root/repo/target/debug/deps/pin_tmp-9b6dff4d6f5ce757.d: crates/soi-bench/tests/pin_tmp.rs

/root/repo/target/debug/deps/pin_tmp-9b6dff4d6f5ce757: crates/soi-bench/tests/pin_tmp.rs

crates/soi-bench/tests/pin_tmp.rs:
