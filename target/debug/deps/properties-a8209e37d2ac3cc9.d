/root/repo/target/debug/deps/properties-a8209e37d2ac3cc9.d: tests/properties.rs

/root/repo/target/debug/deps/properties-a8209e37d2ac3cc9: tests/properties.rs

tests/properties.rs:
