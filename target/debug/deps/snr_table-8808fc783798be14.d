/root/repo/target/debug/deps/snr_table-8808fc783798be14.d: crates/soi-bench/src/bin/snr_table.rs

/root/repo/target/debug/deps/snr_table-8808fc783798be14: crates/soi-bench/src/bin/snr_table.rs

crates/soi-bench/src/bin/snr_table.rs:
