/root/repo/target/debug/deps/snr_table-ba4f921cd826c690.d: crates/soi-bench/src/bin/snr_table.rs

/root/repo/target/debug/deps/snr_table-ba4f921cd826c690: crates/soi-bench/src/bin/snr_table.rs

crates/soi-bench/src/bin/snr_table.rs:
