/root/repo/target/debug/deps/soi-038db81d85866bfd.d: crates/soi-cli/src/main.rs crates/soi-cli/src/args.rs crates/soi-cli/src/commands.rs

/root/repo/target/debug/deps/soi-038db81d85866bfd: crates/soi-cli/src/main.rs crates/soi-cli/src/args.rs crates/soi-cli/src/commands.rs

crates/soi-cli/src/main.rs:
crates/soi-cli/src/args.rs:
crates/soi-cli/src/commands.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
