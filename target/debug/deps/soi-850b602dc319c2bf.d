/root/repo/target/debug/deps/soi-850b602dc319c2bf.d: crates/soi-cli/src/main.rs crates/soi-cli/src/args.rs crates/soi-cli/src/commands.rs

/root/repo/target/debug/deps/soi-850b602dc319c2bf: crates/soi-cli/src/main.rs crates/soi-cli/src/args.rs crates/soi-cli/src/commands.rs

crates/soi-cli/src/main.rs:
crates/soi-cli/src/args.rs:
crates/soi-cli/src/commands.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
