/root/repo/target/debug/deps/soi-878dba629a7472be.d: src/lib.rs

/root/repo/target/debug/deps/soi-878dba629a7472be: src/lib.rs

src/lib.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
