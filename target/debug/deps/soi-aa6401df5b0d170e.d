/root/repo/target/debug/deps/soi-aa6401df5b0d170e.d: src/lib.rs

/root/repo/target/debug/deps/libsoi-aa6401df5b0d170e.rlib: src/lib.rs

/root/repo/target/debug/deps/libsoi-aa6401df5b0d170e.rmeta: src/lib.rs

src/lib.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
