/root/repo/target/debug/deps/soi_bench-34821c1cc43be0c8.d: crates/soi-bench/src/lib.rs crates/soi-bench/src/model.rs crates/soi-bench/src/projection.rs crates/soi-bench/src/report.rs crates/soi-bench/src/simulate.rs crates/soi-bench/src/workload.rs

/root/repo/target/debug/deps/libsoi_bench-34821c1cc43be0c8.rlib: crates/soi-bench/src/lib.rs crates/soi-bench/src/model.rs crates/soi-bench/src/projection.rs crates/soi-bench/src/report.rs crates/soi-bench/src/simulate.rs crates/soi-bench/src/workload.rs

/root/repo/target/debug/deps/libsoi_bench-34821c1cc43be0c8.rmeta: crates/soi-bench/src/lib.rs crates/soi-bench/src/model.rs crates/soi-bench/src/projection.rs crates/soi-bench/src/report.rs crates/soi-bench/src/simulate.rs crates/soi-bench/src/workload.rs

crates/soi-bench/src/lib.rs:
crates/soi-bench/src/model.rs:
crates/soi-bench/src/projection.rs:
crates/soi-bench/src/report.rs:
crates/soi-bench/src/simulate.rs:
crates/soi-bench/src/workload.rs:
