/root/repo/target/debug/deps/soi_bench-9f5b3a003b767bf3.d: crates/soi-bench/src/lib.rs crates/soi-bench/src/model.rs crates/soi-bench/src/projection.rs crates/soi-bench/src/report.rs crates/soi-bench/src/simulate.rs crates/soi-bench/src/workload.rs

/root/repo/target/debug/deps/soi_bench-9f5b3a003b767bf3: crates/soi-bench/src/lib.rs crates/soi-bench/src/model.rs crates/soi-bench/src/projection.rs crates/soi-bench/src/report.rs crates/soi-bench/src/simulate.rs crates/soi-bench/src/workload.rs

crates/soi-bench/src/lib.rs:
crates/soi-bench/src/model.rs:
crates/soi-bench/src/projection.rs:
crates/soi-bench/src/report.rs:
crates/soi-bench/src/simulate.rs:
crates/soi-bench/src/workload.rs:
