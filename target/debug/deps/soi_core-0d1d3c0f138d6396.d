/root/repo/target/debug/deps/soi_core-0d1d3c0f138d6396.d: crates/soi-core/src/lib.rs crates/soi-core/src/coeff.rs crates/soi-core/src/conv.rs crates/soi-core/src/errmodel.rs crates/soi-core/src/error.rs crates/soi-core/src/exact.rs crates/soi-core/src/opcount.rs crates/soi-core/src/params.rs crates/soi-core/src/pipeline.rs crates/soi-core/src/theorem.rs

/root/repo/target/debug/deps/soi_core-0d1d3c0f138d6396: crates/soi-core/src/lib.rs crates/soi-core/src/coeff.rs crates/soi-core/src/conv.rs crates/soi-core/src/errmodel.rs crates/soi-core/src/error.rs crates/soi-core/src/exact.rs crates/soi-core/src/opcount.rs crates/soi-core/src/params.rs crates/soi-core/src/pipeline.rs crates/soi-core/src/theorem.rs

crates/soi-core/src/lib.rs:
crates/soi-core/src/coeff.rs:
crates/soi-core/src/conv.rs:
crates/soi-core/src/errmodel.rs:
crates/soi-core/src/error.rs:
crates/soi-core/src/exact.rs:
crates/soi-core/src/opcount.rs:
crates/soi-core/src/params.rs:
crates/soi-core/src/pipeline.rs:
crates/soi-core/src/theorem.rs:
