/root/repo/target/debug/deps/soi_core-4127717c1fee9062.d: crates/soi-core/src/lib.rs crates/soi-core/src/coeff.rs crates/soi-core/src/conv.rs crates/soi-core/src/errmodel.rs crates/soi-core/src/error.rs crates/soi-core/src/exact.rs crates/soi-core/src/opcount.rs crates/soi-core/src/params.rs crates/soi-core/src/pipeline.rs crates/soi-core/src/theorem.rs

/root/repo/target/debug/deps/libsoi_core-4127717c1fee9062.rlib: crates/soi-core/src/lib.rs crates/soi-core/src/coeff.rs crates/soi-core/src/conv.rs crates/soi-core/src/errmodel.rs crates/soi-core/src/error.rs crates/soi-core/src/exact.rs crates/soi-core/src/opcount.rs crates/soi-core/src/params.rs crates/soi-core/src/pipeline.rs crates/soi-core/src/theorem.rs

/root/repo/target/debug/deps/libsoi_core-4127717c1fee9062.rmeta: crates/soi-core/src/lib.rs crates/soi-core/src/coeff.rs crates/soi-core/src/conv.rs crates/soi-core/src/errmodel.rs crates/soi-core/src/error.rs crates/soi-core/src/exact.rs crates/soi-core/src/opcount.rs crates/soi-core/src/params.rs crates/soi-core/src/pipeline.rs crates/soi-core/src/theorem.rs

crates/soi-core/src/lib.rs:
crates/soi-core/src/coeff.rs:
crates/soi-core/src/conv.rs:
crates/soi-core/src/errmodel.rs:
crates/soi-core/src/error.rs:
crates/soi-core/src/exact.rs:
crates/soi-core/src/opcount.rs:
crates/soi-core/src/params.rs:
crates/soi-core/src/pipeline.rs:
crates/soi-core/src/theorem.rs:
