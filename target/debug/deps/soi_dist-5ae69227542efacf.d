/root/repo/target/debug/deps/soi_dist-5ae69227542efacf.d: crates/soi-dist/src/lib.rs crates/soi-dist/src/baseline.rs crates/soi-dist/src/dtranspose.rs crates/soi-dist/src/fft2d.rs crates/soi-dist/src/rates.rs crates/soi-dist/src/soi.rs crates/soi-dist/src/times.rs

/root/repo/target/debug/deps/libsoi_dist-5ae69227542efacf.rlib: crates/soi-dist/src/lib.rs crates/soi-dist/src/baseline.rs crates/soi-dist/src/dtranspose.rs crates/soi-dist/src/fft2d.rs crates/soi-dist/src/rates.rs crates/soi-dist/src/soi.rs crates/soi-dist/src/times.rs

/root/repo/target/debug/deps/libsoi_dist-5ae69227542efacf.rmeta: crates/soi-dist/src/lib.rs crates/soi-dist/src/baseline.rs crates/soi-dist/src/dtranspose.rs crates/soi-dist/src/fft2d.rs crates/soi-dist/src/rates.rs crates/soi-dist/src/soi.rs crates/soi-dist/src/times.rs

crates/soi-dist/src/lib.rs:
crates/soi-dist/src/baseline.rs:
crates/soi-dist/src/dtranspose.rs:
crates/soi-dist/src/fft2d.rs:
crates/soi-dist/src/rates.rs:
crates/soi-dist/src/soi.rs:
crates/soi-dist/src/times.rs:
