/root/repo/target/debug/deps/soi_dist-bfd23e414bfbbc74.d: crates/soi-dist/src/lib.rs crates/soi-dist/src/baseline.rs crates/soi-dist/src/dtranspose.rs crates/soi-dist/src/fft2d.rs crates/soi-dist/src/rates.rs crates/soi-dist/src/soi.rs crates/soi-dist/src/times.rs

/root/repo/target/debug/deps/soi_dist-bfd23e414bfbbc74: crates/soi-dist/src/lib.rs crates/soi-dist/src/baseline.rs crates/soi-dist/src/dtranspose.rs crates/soi-dist/src/fft2d.rs crates/soi-dist/src/rates.rs crates/soi-dist/src/soi.rs crates/soi-dist/src/times.rs

crates/soi-dist/src/lib.rs:
crates/soi-dist/src/baseline.rs:
crates/soi-dist/src/dtranspose.rs:
crates/soi-dist/src/fft2d.rs:
crates/soi-dist/src/rates.rs:
crates/soi-dist/src/soi.rs:
crates/soi-dist/src/times.rs:
