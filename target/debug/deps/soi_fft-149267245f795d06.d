/root/repo/target/debug/deps/soi_fft-149267245f795d06.d: crates/soi-fft/src/lib.rs crates/soi-fft/src/batch.rs crates/soi-fft/src/bluestein.rs crates/soi-fft/src/ddfft.rs crates/soi-fft/src/dft.rs crates/soi-fft/src/fft2d.rs crates/soi-fft/src/flops.rs crates/soi-fft/src/mixed.rs crates/soi-fft/src/permute.rs crates/soi-fft/src/plan.rs crates/soi-fft/src/realfft.rs crates/soi-fft/src/signal.rs crates/soi-fft/src/splitradix.rs crates/soi-fft/src/stockham.rs crates/soi-fft/src/twiddle.rs

/root/repo/target/debug/deps/soi_fft-149267245f795d06: crates/soi-fft/src/lib.rs crates/soi-fft/src/batch.rs crates/soi-fft/src/bluestein.rs crates/soi-fft/src/ddfft.rs crates/soi-fft/src/dft.rs crates/soi-fft/src/fft2d.rs crates/soi-fft/src/flops.rs crates/soi-fft/src/mixed.rs crates/soi-fft/src/permute.rs crates/soi-fft/src/plan.rs crates/soi-fft/src/realfft.rs crates/soi-fft/src/signal.rs crates/soi-fft/src/splitradix.rs crates/soi-fft/src/stockham.rs crates/soi-fft/src/twiddle.rs

crates/soi-fft/src/lib.rs:
crates/soi-fft/src/batch.rs:
crates/soi-fft/src/bluestein.rs:
crates/soi-fft/src/ddfft.rs:
crates/soi-fft/src/dft.rs:
crates/soi-fft/src/fft2d.rs:
crates/soi-fft/src/flops.rs:
crates/soi-fft/src/mixed.rs:
crates/soi-fft/src/permute.rs:
crates/soi-fft/src/plan.rs:
crates/soi-fft/src/realfft.rs:
crates/soi-fft/src/signal.rs:
crates/soi-fft/src/splitradix.rs:
crates/soi-fft/src/stockham.rs:
crates/soi-fft/src/twiddle.rs:
