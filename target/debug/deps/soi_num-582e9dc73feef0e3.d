/root/repo/target/debug/deps/soi_num-582e9dc73feef0e3.d: crates/soi-num/src/lib.rs crates/soi-num/src/complex.rs crates/soi-num/src/dd.rs crates/soi-num/src/kahan.rs crates/soi-num/src/quad.rs crates/soi-num/src/real.rs crates/soi-num/src/special.rs crates/soi-num/src/stats.rs

/root/repo/target/debug/deps/libsoi_num-582e9dc73feef0e3.rlib: crates/soi-num/src/lib.rs crates/soi-num/src/complex.rs crates/soi-num/src/dd.rs crates/soi-num/src/kahan.rs crates/soi-num/src/quad.rs crates/soi-num/src/real.rs crates/soi-num/src/special.rs crates/soi-num/src/stats.rs

/root/repo/target/debug/deps/libsoi_num-582e9dc73feef0e3.rmeta: crates/soi-num/src/lib.rs crates/soi-num/src/complex.rs crates/soi-num/src/dd.rs crates/soi-num/src/kahan.rs crates/soi-num/src/quad.rs crates/soi-num/src/real.rs crates/soi-num/src/special.rs crates/soi-num/src/stats.rs

crates/soi-num/src/lib.rs:
crates/soi-num/src/complex.rs:
crates/soi-num/src/dd.rs:
crates/soi-num/src/kahan.rs:
crates/soi-num/src/quad.rs:
crates/soi-num/src/real.rs:
crates/soi-num/src/special.rs:
crates/soi-num/src/stats.rs:
