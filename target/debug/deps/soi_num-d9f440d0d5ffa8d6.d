/root/repo/target/debug/deps/soi_num-d9f440d0d5ffa8d6.d: crates/soi-num/src/lib.rs crates/soi-num/src/complex.rs crates/soi-num/src/dd.rs crates/soi-num/src/kahan.rs crates/soi-num/src/quad.rs crates/soi-num/src/real.rs crates/soi-num/src/special.rs crates/soi-num/src/stats.rs

/root/repo/target/debug/deps/soi_num-d9f440d0d5ffa8d6: crates/soi-num/src/lib.rs crates/soi-num/src/complex.rs crates/soi-num/src/dd.rs crates/soi-num/src/kahan.rs crates/soi-num/src/quad.rs crates/soi-num/src/real.rs crates/soi-num/src/special.rs crates/soi-num/src/stats.rs

crates/soi-num/src/lib.rs:
crates/soi-num/src/complex.rs:
crates/soi-num/src/dd.rs:
crates/soi-num/src/kahan.rs:
crates/soi-num/src/quad.rs:
crates/soi-num/src/real.rs:
crates/soi-num/src/special.rs:
crates/soi-num/src/stats.rs:
