/root/repo/target/debug/deps/soi_pipeline-8a1ef28d25a58323.d: crates/soi-bench/benches/soi_pipeline.rs

/root/repo/target/debug/deps/soi_pipeline-8a1ef28d25a58323: crates/soi-bench/benches/soi_pipeline.rs

crates/soi-bench/benches/soi_pipeline.rs:
