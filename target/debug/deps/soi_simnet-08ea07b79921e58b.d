/root/repo/target/debug/deps/soi_simnet-08ea07b79921e58b.d: crates/soi-simnet/src/lib.rs crates/soi-simnet/src/clock.rs crates/soi-simnet/src/cluster.rs crates/soi-simnet/src/comm.rs crates/soi-simnet/src/netmodel.rs crates/soi-simnet/src/systems.rs

/root/repo/target/debug/deps/libsoi_simnet-08ea07b79921e58b.rlib: crates/soi-simnet/src/lib.rs crates/soi-simnet/src/clock.rs crates/soi-simnet/src/cluster.rs crates/soi-simnet/src/comm.rs crates/soi-simnet/src/netmodel.rs crates/soi-simnet/src/systems.rs

/root/repo/target/debug/deps/libsoi_simnet-08ea07b79921e58b.rmeta: crates/soi-simnet/src/lib.rs crates/soi-simnet/src/clock.rs crates/soi-simnet/src/cluster.rs crates/soi-simnet/src/comm.rs crates/soi-simnet/src/netmodel.rs crates/soi-simnet/src/systems.rs

crates/soi-simnet/src/lib.rs:
crates/soi-simnet/src/clock.rs:
crates/soi-simnet/src/cluster.rs:
crates/soi-simnet/src/comm.rs:
crates/soi-simnet/src/netmodel.rs:
crates/soi-simnet/src/systems.rs:
