/root/repo/target/debug/deps/soi_simnet-b295b3cccc079c3b.d: crates/soi-simnet/src/lib.rs crates/soi-simnet/src/clock.rs crates/soi-simnet/src/cluster.rs crates/soi-simnet/src/comm.rs crates/soi-simnet/src/netmodel.rs crates/soi-simnet/src/systems.rs

/root/repo/target/debug/deps/soi_simnet-b295b3cccc079c3b: crates/soi-simnet/src/lib.rs crates/soi-simnet/src/clock.rs crates/soi-simnet/src/cluster.rs crates/soi-simnet/src/comm.rs crates/soi-simnet/src/netmodel.rs crates/soi-simnet/src/systems.rs

crates/soi-simnet/src/lib.rs:
crates/soi-simnet/src/clock.rs:
crates/soi-simnet/src/cluster.rs:
crates/soi-simnet/src/comm.rs:
crates/soi-simnet/src/netmodel.rs:
crates/soi-simnet/src/systems.rs:
