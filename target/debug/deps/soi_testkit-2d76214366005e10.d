/root/repo/target/debug/deps/soi_testkit-2d76214366005e10.d: crates/soi-testkit/src/lib.rs crates/soi-testkit/src/bench.rs crates/soi-testkit/src/prop.rs crates/soi-testkit/src/rng.rs

/root/repo/target/debug/deps/libsoi_testkit-2d76214366005e10.rlib: crates/soi-testkit/src/lib.rs crates/soi-testkit/src/bench.rs crates/soi-testkit/src/prop.rs crates/soi-testkit/src/rng.rs

/root/repo/target/debug/deps/libsoi_testkit-2d76214366005e10.rmeta: crates/soi-testkit/src/lib.rs crates/soi-testkit/src/bench.rs crates/soi-testkit/src/prop.rs crates/soi-testkit/src/rng.rs

crates/soi-testkit/src/lib.rs:
crates/soi-testkit/src/bench.rs:
crates/soi-testkit/src/prop.rs:
crates/soi-testkit/src/rng.rs:
