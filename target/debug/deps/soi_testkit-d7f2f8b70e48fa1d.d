/root/repo/target/debug/deps/soi_testkit-d7f2f8b70e48fa1d.d: crates/soi-testkit/src/lib.rs crates/soi-testkit/src/bench.rs crates/soi-testkit/src/prop.rs crates/soi-testkit/src/rng.rs

/root/repo/target/debug/deps/soi_testkit-d7f2f8b70e48fa1d: crates/soi-testkit/src/lib.rs crates/soi-testkit/src/bench.rs crates/soi-testkit/src/prop.rs crates/soi-testkit/src/rng.rs

crates/soi-testkit/src/lib.rs:
crates/soi-testkit/src/bench.rs:
crates/soi-testkit/src/prop.rs:
crates/soi-testkit/src/rng.rs:
