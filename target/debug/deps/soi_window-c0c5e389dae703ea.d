/root/repo/target/debug/deps/soi_window-c0c5e389dae703ea.d: crates/soi-window/src/lib.rs crates/soi-window/src/design.rs crates/soi-window/src/family.rs crates/soi-window/src/metrics.rs crates/soi-window/src/presets.rs

/root/repo/target/debug/deps/soi_window-c0c5e389dae703ea: crates/soi-window/src/lib.rs crates/soi-window/src/design.rs crates/soi-window/src/family.rs crates/soi-window/src/metrics.rs crates/soi-window/src/presets.rs

crates/soi-window/src/lib.rs:
crates/soi-window/src/design.rs:
crates/soi-window/src/family.rs:
crates/soi-window/src/metrics.rs:
crates/soi-window/src/presets.rs:
