/root/repo/target/debug/deps/soi_window-d6cc52f083651ddc.d: crates/soi-window/src/lib.rs crates/soi-window/src/design.rs crates/soi-window/src/family.rs crates/soi-window/src/metrics.rs crates/soi-window/src/presets.rs

/root/repo/target/debug/deps/libsoi_window-d6cc52f083651ddc.rlib: crates/soi-window/src/lib.rs crates/soi-window/src/design.rs crates/soi-window/src/family.rs crates/soi-window/src/metrics.rs crates/soi-window/src/presets.rs

/root/repo/target/debug/deps/libsoi_window-d6cc52f083651ddc.rmeta: crates/soi-window/src/lib.rs crates/soi-window/src/design.rs crates/soi-window/src/family.rs crates/soi-window/src/metrics.rs crates/soi-window/src/presets.rs

crates/soi-window/src/lib.rs:
crates/soi-window/src/design.rs:
crates/soi-window/src/family.rs:
crates/soi-window/src/metrics.rs:
crates/soi-window/src/presets.rs:
