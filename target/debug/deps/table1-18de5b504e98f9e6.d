/root/repo/target/debug/deps/table1-18de5b504e98f9e6.d: crates/soi-bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-18de5b504e98f9e6: crates/soi-bench/src/bin/table1.rs

crates/soi-bench/src/bin/table1.rs:
