/root/repo/target/debug/deps/table1-58f816888761abff.d: crates/soi-bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-58f816888761abff: crates/soi-bench/src/bin/table1.rs

crates/soi-bench/src/bin/table1.rs:
