/root/repo/target/debug/deps/window_properties-6de091897943de92.d: crates/soi-window/tests/window_properties.rs

/root/repo/target/debug/deps/window_properties-6de091897943de92: crates/soi-window/tests/window_properties.rs

crates/soi-window/tests/window_properties.rs:
