/root/repo/target/debug/examples/accuracy_tradeoff-6a042f9c90ef32e0.d: examples/accuracy_tradeoff.rs

/root/repo/target/debug/examples/accuracy_tradeoff-6a042f9c90ef32e0: examples/accuracy_tradeoff.rs

examples/accuracy_tradeoff.rs:
