/root/repo/target/debug/examples/distributed_fft-1211d02b6210e767.d: examples/distributed_fft.rs

/root/repo/target/debug/examples/distributed_fft-1211d02b6210e767: examples/distributed_fft.rs

examples/distributed_fft.rs:
