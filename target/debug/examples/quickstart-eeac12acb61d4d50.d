/root/repo/target/debug/examples/quickstart-eeac12acb61d4d50.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-eeac12acb61d4d50: examples/quickstart.rs

examples/quickstart.rs:
