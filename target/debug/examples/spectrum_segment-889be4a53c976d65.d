/root/repo/target/debug/examples/spectrum_segment-889be4a53c976d65.d: examples/spectrum_segment.rs

/root/repo/target/debug/examples/spectrum_segment-889be4a53c976d65: examples/spectrum_segment.rs

examples/spectrum_segment.rs:
