/root/repo/target/debug/examples/theorem_playground-7b71dde42db68c7e.d: examples/theorem_playground.rs

/root/repo/target/debug/examples/theorem_playground-7b71dde42db68c7e: examples/theorem_playground.rs

examples/theorem_playground.rs:
