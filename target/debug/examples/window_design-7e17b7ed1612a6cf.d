/root/repo/target/debug/examples/window_design-7e17b7ed1612a6cf.d: examples/window_design.rs

/root/repo/target/debug/examples/window_design-7e17b7ed1612a6cf: examples/window_design.rs

examples/window_design.rs:
