/root/repo/target/debug/examples/zoom_band-31dee55799b3b719.d: examples/zoom_band.rs

/root/repo/target/debug/examples/zoom_band-31dee55799b3b719: examples/zoom_band.rs

examples/zoom_band.rs:
