/root/repo/target/release/deps/ablation_beta-fc52795893f38814.d: crates/soi-bench/src/bin/ablation_beta.rs

/root/repo/target/release/deps/ablation_beta-fc52795893f38814: crates/soi-bench/src/bin/ablation_beta.rs

crates/soi-bench/src/bin/ablation_beta.rs:
