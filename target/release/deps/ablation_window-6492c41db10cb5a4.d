/root/repo/target/release/deps/ablation_window-6492c41db10cb5a4.d: crates/soi-bench/src/bin/ablation_window.rs

/root/repo/target/release/deps/ablation_window-6492c41db10cb5a4: crates/soi-bench/src/bin/ablation_window.rs

crates/soi-bench/src/bin/ablation_window.rs:
