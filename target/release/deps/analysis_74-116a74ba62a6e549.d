/root/repo/target/release/deps/analysis_74-116a74ba62a6e549.d: crates/soi-bench/src/bin/analysis_74.rs

/root/repo/target/release/deps/analysis_74-116a74ba62a6e549: crates/soi-bench/src/bin/analysis_74.rs

crates/soi-bench/src/bin/analysis_74.rs:
