/root/repo/target/release/deps/conv_kernel-6f763c6b552f5659.d: crates/soi-bench/benches/conv_kernel.rs

/root/repo/target/release/deps/conv_kernel-6f763c6b552f5659: crates/soi-bench/benches/conv_kernel.rs

crates/soi-bench/benches/conv_kernel.rs:
