/root/repo/target/release/deps/fft_kernels-1493319602986b6b.d: crates/soi-bench/benches/fft_kernels.rs

/root/repo/target/release/deps/fft_kernels-1493319602986b6b: crates/soi-bench/benches/fft_kernels.rs

crates/soi-bench/benches/fft_kernels.rs:
