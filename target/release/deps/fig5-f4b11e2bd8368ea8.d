/root/repo/target/release/deps/fig5-f4b11e2bd8368ea8.d: crates/soi-bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-f4b11e2bd8368ea8: crates/soi-bench/src/bin/fig5.rs

crates/soi-bench/src/bin/fig5.rs:
