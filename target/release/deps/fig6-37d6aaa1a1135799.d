/root/repo/target/release/deps/fig6-37d6aaa1a1135799.d: crates/soi-bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-37d6aaa1a1135799: crates/soi-bench/src/bin/fig6.rs

crates/soi-bench/src/bin/fig6.rs:
