/root/repo/target/release/deps/fig7-c508655448dcb141.d: crates/soi-bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-c508655448dcb141: crates/soi-bench/src/bin/fig7.rs

crates/soi-bench/src/bin/fig7.rs:
