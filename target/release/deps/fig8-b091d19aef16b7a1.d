/root/repo/target/release/deps/fig8-b091d19aef16b7a1.d: crates/soi-bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-b091d19aef16b7a1: crates/soi-bench/src/bin/fig8.rs

crates/soi-bench/src/bin/fig8.rs:
