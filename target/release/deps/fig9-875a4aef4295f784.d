/root/repo/target/release/deps/fig9-875a4aef4295f784.d: crates/soi-bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-875a4aef4295f784: crates/soi-bench/src/bin/fig9.rs

crates/soi-bench/src/bin/fig9.rs:
