/root/repo/target/release/deps/model_check-be0f6dc4c94c68b4.d: crates/soi-bench/src/bin/model_check.rs

/root/repo/target/release/deps/model_check-be0f6dc4c94c68b4: crates/soi-bench/src/bin/model_check.rs

crates/soi-bench/src/bin/model_check.rs:
