/root/repo/target/release/deps/snr_table-49838767a13c808f.d: crates/soi-bench/src/bin/snr_table.rs

/root/repo/target/release/deps/snr_table-49838767a13c808f: crates/soi-bench/src/bin/snr_table.rs

crates/soi-bench/src/bin/snr_table.rs:
