/root/repo/target/release/deps/soi-49f1b11fd045decc.d: src/lib.rs

/root/repo/target/release/deps/libsoi-49f1b11fd045decc.rlib: src/lib.rs

/root/repo/target/release/deps/libsoi-49f1b11fd045decc.rmeta: src/lib.rs

src/lib.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
