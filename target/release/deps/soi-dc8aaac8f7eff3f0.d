/root/repo/target/release/deps/soi-dc8aaac8f7eff3f0.d: crates/soi-cli/src/main.rs crates/soi-cli/src/args.rs crates/soi-cli/src/commands.rs

/root/repo/target/release/deps/soi-dc8aaac8f7eff3f0: crates/soi-cli/src/main.rs crates/soi-cli/src/args.rs crates/soi-cli/src/commands.rs

crates/soi-cli/src/main.rs:
crates/soi-cli/src/args.rs:
crates/soi-cli/src/commands.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
