/root/repo/target/release/deps/soi_bench-b84bf06f71fd751d.d: crates/soi-bench/src/lib.rs crates/soi-bench/src/model.rs crates/soi-bench/src/projection.rs crates/soi-bench/src/report.rs crates/soi-bench/src/simulate.rs crates/soi-bench/src/workload.rs

/root/repo/target/release/deps/libsoi_bench-b84bf06f71fd751d.rlib: crates/soi-bench/src/lib.rs crates/soi-bench/src/model.rs crates/soi-bench/src/projection.rs crates/soi-bench/src/report.rs crates/soi-bench/src/simulate.rs crates/soi-bench/src/workload.rs

/root/repo/target/release/deps/libsoi_bench-b84bf06f71fd751d.rmeta: crates/soi-bench/src/lib.rs crates/soi-bench/src/model.rs crates/soi-bench/src/projection.rs crates/soi-bench/src/report.rs crates/soi-bench/src/simulate.rs crates/soi-bench/src/workload.rs

crates/soi-bench/src/lib.rs:
crates/soi-bench/src/model.rs:
crates/soi-bench/src/projection.rs:
crates/soi-bench/src/report.rs:
crates/soi-bench/src/simulate.rs:
crates/soi-bench/src/workload.rs:
