/root/repo/target/release/deps/soi_core-11ad572b4e6bbc1b.d: crates/soi-core/src/lib.rs crates/soi-core/src/coeff.rs crates/soi-core/src/conv.rs crates/soi-core/src/errmodel.rs crates/soi-core/src/error.rs crates/soi-core/src/exact.rs crates/soi-core/src/opcount.rs crates/soi-core/src/params.rs crates/soi-core/src/pipeline.rs crates/soi-core/src/theorem.rs

/root/repo/target/release/deps/libsoi_core-11ad572b4e6bbc1b.rlib: crates/soi-core/src/lib.rs crates/soi-core/src/coeff.rs crates/soi-core/src/conv.rs crates/soi-core/src/errmodel.rs crates/soi-core/src/error.rs crates/soi-core/src/exact.rs crates/soi-core/src/opcount.rs crates/soi-core/src/params.rs crates/soi-core/src/pipeline.rs crates/soi-core/src/theorem.rs

/root/repo/target/release/deps/libsoi_core-11ad572b4e6bbc1b.rmeta: crates/soi-core/src/lib.rs crates/soi-core/src/coeff.rs crates/soi-core/src/conv.rs crates/soi-core/src/errmodel.rs crates/soi-core/src/error.rs crates/soi-core/src/exact.rs crates/soi-core/src/opcount.rs crates/soi-core/src/params.rs crates/soi-core/src/pipeline.rs crates/soi-core/src/theorem.rs

crates/soi-core/src/lib.rs:
crates/soi-core/src/coeff.rs:
crates/soi-core/src/conv.rs:
crates/soi-core/src/errmodel.rs:
crates/soi-core/src/error.rs:
crates/soi-core/src/exact.rs:
crates/soi-core/src/opcount.rs:
crates/soi-core/src/params.rs:
crates/soi-core/src/pipeline.rs:
crates/soi-core/src/theorem.rs:
