/root/repo/target/release/deps/soi_dist-ba095e58fb02c837.d: crates/soi-dist/src/lib.rs crates/soi-dist/src/baseline.rs crates/soi-dist/src/dtranspose.rs crates/soi-dist/src/fft2d.rs crates/soi-dist/src/rates.rs crates/soi-dist/src/soi.rs crates/soi-dist/src/times.rs

/root/repo/target/release/deps/libsoi_dist-ba095e58fb02c837.rlib: crates/soi-dist/src/lib.rs crates/soi-dist/src/baseline.rs crates/soi-dist/src/dtranspose.rs crates/soi-dist/src/fft2d.rs crates/soi-dist/src/rates.rs crates/soi-dist/src/soi.rs crates/soi-dist/src/times.rs

/root/repo/target/release/deps/libsoi_dist-ba095e58fb02c837.rmeta: crates/soi-dist/src/lib.rs crates/soi-dist/src/baseline.rs crates/soi-dist/src/dtranspose.rs crates/soi-dist/src/fft2d.rs crates/soi-dist/src/rates.rs crates/soi-dist/src/soi.rs crates/soi-dist/src/times.rs

crates/soi-dist/src/lib.rs:
crates/soi-dist/src/baseline.rs:
crates/soi-dist/src/dtranspose.rs:
crates/soi-dist/src/fft2d.rs:
crates/soi-dist/src/rates.rs:
crates/soi-dist/src/soi.rs:
crates/soi-dist/src/times.rs:
