/root/repo/target/release/deps/soi_fft-c55825e7baa8116c.d: crates/soi-fft/src/lib.rs crates/soi-fft/src/batch.rs crates/soi-fft/src/bluestein.rs crates/soi-fft/src/ddfft.rs crates/soi-fft/src/dft.rs crates/soi-fft/src/fft2d.rs crates/soi-fft/src/flops.rs crates/soi-fft/src/mixed.rs crates/soi-fft/src/permute.rs crates/soi-fft/src/plan.rs crates/soi-fft/src/realfft.rs crates/soi-fft/src/signal.rs crates/soi-fft/src/splitradix.rs crates/soi-fft/src/stockham.rs crates/soi-fft/src/twiddle.rs

/root/repo/target/release/deps/libsoi_fft-c55825e7baa8116c.rlib: crates/soi-fft/src/lib.rs crates/soi-fft/src/batch.rs crates/soi-fft/src/bluestein.rs crates/soi-fft/src/ddfft.rs crates/soi-fft/src/dft.rs crates/soi-fft/src/fft2d.rs crates/soi-fft/src/flops.rs crates/soi-fft/src/mixed.rs crates/soi-fft/src/permute.rs crates/soi-fft/src/plan.rs crates/soi-fft/src/realfft.rs crates/soi-fft/src/signal.rs crates/soi-fft/src/splitradix.rs crates/soi-fft/src/stockham.rs crates/soi-fft/src/twiddle.rs

/root/repo/target/release/deps/libsoi_fft-c55825e7baa8116c.rmeta: crates/soi-fft/src/lib.rs crates/soi-fft/src/batch.rs crates/soi-fft/src/bluestein.rs crates/soi-fft/src/ddfft.rs crates/soi-fft/src/dft.rs crates/soi-fft/src/fft2d.rs crates/soi-fft/src/flops.rs crates/soi-fft/src/mixed.rs crates/soi-fft/src/permute.rs crates/soi-fft/src/plan.rs crates/soi-fft/src/realfft.rs crates/soi-fft/src/signal.rs crates/soi-fft/src/splitradix.rs crates/soi-fft/src/stockham.rs crates/soi-fft/src/twiddle.rs

crates/soi-fft/src/lib.rs:
crates/soi-fft/src/batch.rs:
crates/soi-fft/src/bluestein.rs:
crates/soi-fft/src/ddfft.rs:
crates/soi-fft/src/dft.rs:
crates/soi-fft/src/fft2d.rs:
crates/soi-fft/src/flops.rs:
crates/soi-fft/src/mixed.rs:
crates/soi-fft/src/permute.rs:
crates/soi-fft/src/plan.rs:
crates/soi-fft/src/realfft.rs:
crates/soi-fft/src/signal.rs:
crates/soi-fft/src/splitradix.rs:
crates/soi-fft/src/stockham.rs:
crates/soi-fft/src/twiddle.rs:
