/root/repo/target/release/deps/soi_num-e43c5c13e4b52132.d: crates/soi-num/src/lib.rs crates/soi-num/src/complex.rs crates/soi-num/src/dd.rs crates/soi-num/src/kahan.rs crates/soi-num/src/quad.rs crates/soi-num/src/real.rs crates/soi-num/src/special.rs crates/soi-num/src/stats.rs

/root/repo/target/release/deps/libsoi_num-e43c5c13e4b52132.rlib: crates/soi-num/src/lib.rs crates/soi-num/src/complex.rs crates/soi-num/src/dd.rs crates/soi-num/src/kahan.rs crates/soi-num/src/quad.rs crates/soi-num/src/real.rs crates/soi-num/src/special.rs crates/soi-num/src/stats.rs

/root/repo/target/release/deps/libsoi_num-e43c5c13e4b52132.rmeta: crates/soi-num/src/lib.rs crates/soi-num/src/complex.rs crates/soi-num/src/dd.rs crates/soi-num/src/kahan.rs crates/soi-num/src/quad.rs crates/soi-num/src/real.rs crates/soi-num/src/special.rs crates/soi-num/src/stats.rs

crates/soi-num/src/lib.rs:
crates/soi-num/src/complex.rs:
crates/soi-num/src/dd.rs:
crates/soi-num/src/kahan.rs:
crates/soi-num/src/quad.rs:
crates/soi-num/src/real.rs:
crates/soi-num/src/special.rs:
crates/soi-num/src/stats.rs:
