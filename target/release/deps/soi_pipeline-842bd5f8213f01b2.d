/root/repo/target/release/deps/soi_pipeline-842bd5f8213f01b2.d: crates/soi-bench/benches/soi_pipeline.rs

/root/repo/target/release/deps/soi_pipeline-842bd5f8213f01b2: crates/soi-bench/benches/soi_pipeline.rs

crates/soi-bench/benches/soi_pipeline.rs:
