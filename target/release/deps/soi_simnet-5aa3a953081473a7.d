/root/repo/target/release/deps/soi_simnet-5aa3a953081473a7.d: crates/soi-simnet/src/lib.rs crates/soi-simnet/src/clock.rs crates/soi-simnet/src/cluster.rs crates/soi-simnet/src/comm.rs crates/soi-simnet/src/netmodel.rs crates/soi-simnet/src/systems.rs

/root/repo/target/release/deps/libsoi_simnet-5aa3a953081473a7.rlib: crates/soi-simnet/src/lib.rs crates/soi-simnet/src/clock.rs crates/soi-simnet/src/cluster.rs crates/soi-simnet/src/comm.rs crates/soi-simnet/src/netmodel.rs crates/soi-simnet/src/systems.rs

/root/repo/target/release/deps/libsoi_simnet-5aa3a953081473a7.rmeta: crates/soi-simnet/src/lib.rs crates/soi-simnet/src/clock.rs crates/soi-simnet/src/cluster.rs crates/soi-simnet/src/comm.rs crates/soi-simnet/src/netmodel.rs crates/soi-simnet/src/systems.rs

crates/soi-simnet/src/lib.rs:
crates/soi-simnet/src/clock.rs:
crates/soi-simnet/src/cluster.rs:
crates/soi-simnet/src/comm.rs:
crates/soi-simnet/src/netmodel.rs:
crates/soi-simnet/src/systems.rs:
