/root/repo/target/release/deps/soi_testkit-0822313be0524c81.d: crates/soi-testkit/src/lib.rs crates/soi-testkit/src/bench.rs crates/soi-testkit/src/prop.rs crates/soi-testkit/src/rng.rs

/root/repo/target/release/deps/libsoi_testkit-0822313be0524c81.rlib: crates/soi-testkit/src/lib.rs crates/soi-testkit/src/bench.rs crates/soi-testkit/src/prop.rs crates/soi-testkit/src/rng.rs

/root/repo/target/release/deps/libsoi_testkit-0822313be0524c81.rmeta: crates/soi-testkit/src/lib.rs crates/soi-testkit/src/bench.rs crates/soi-testkit/src/prop.rs crates/soi-testkit/src/rng.rs

crates/soi-testkit/src/lib.rs:
crates/soi-testkit/src/bench.rs:
crates/soi-testkit/src/prop.rs:
crates/soi-testkit/src/rng.rs:
