/root/repo/target/release/deps/soi_window-2ad90fc3f12fbea3.d: crates/soi-window/src/lib.rs crates/soi-window/src/design.rs crates/soi-window/src/family.rs crates/soi-window/src/metrics.rs crates/soi-window/src/presets.rs

/root/repo/target/release/deps/libsoi_window-2ad90fc3f12fbea3.rlib: crates/soi-window/src/lib.rs crates/soi-window/src/design.rs crates/soi-window/src/family.rs crates/soi-window/src/metrics.rs crates/soi-window/src/presets.rs

/root/repo/target/release/deps/libsoi_window-2ad90fc3f12fbea3.rmeta: crates/soi-window/src/lib.rs crates/soi-window/src/design.rs crates/soi-window/src/family.rs crates/soi-window/src/metrics.rs crates/soi-window/src/presets.rs

crates/soi-window/src/lib.rs:
crates/soi-window/src/design.rs:
crates/soi-window/src/family.rs:
crates/soi-window/src/metrics.rs:
crates/soi-window/src/presets.rs:
