/root/repo/target/release/deps/table1-9272f50b425de87c.d: crates/soi-bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-9272f50b425de87c: crates/soi-bench/src/bin/table1.rs

crates/soi-bench/src/bin/table1.rs:
