//! Cross-engine agreement: four independently-derived FFT engines
//! (Stockham radix-4/2, split-radix, mixed-radix, Bluestein) checked
//! against each other and ranked against a double-double reference.
//!
//! Engines sharing a twiddle-convention bug would still agree with each
//! other — but not with the dd reference, whose twiddles come from a
//! separate (dd) trig implementation; and the naive-DFT oracle is a third
//! independent path. Triangulating all of them pins every engine to the
//! true DFT.

use soi::fft::bluestein::BluesteinFft;
use soi::fft::ddfft::reference_spectrum;
use soi::fft::mixed::MixedRadixFft;
use soi::fft::splitradix::SplitRadixFft;
use soi::fft::stockham::StockhamFft;
use soi::fft::twiddle::Sign;
use soi::num::stats::snr_db_vs_pairs;
use soi::num::Complex64;

fn signal(n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|i| Complex64::new((i as f64 * 0.77).sin() - 0.2, (i as f64 * 0.31).cos() + 0.1))
        .collect()
}

#[test]
fn all_four_engines_agree_at_power_of_two() {
    let n = 1024;
    let x = signal(n);
    let mut outs: Vec<Vec<Complex64>> = Vec::new();
    let mut a = x.clone();
    StockhamFft::new(n, Sign::Forward).execute(&mut a);
    outs.push(a);
    let mut b = x.clone();
    SplitRadixFft::new(n, Sign::Forward).execute(&mut b);
    outs.push(b);
    let mut c = x.clone();
    MixedRadixFft::new(n, Sign::Forward).execute(&mut c);
    outs.push(c);
    let mut d = x.clone();
    BluesteinFft::new(n, Sign::Forward).execute(&mut d);
    outs.push(d);
    let scale: f64 = outs[0].iter().map(|v| v.abs()).fold(0.0, f64::max);
    for (i, o) in outs.iter().enumerate().skip(1) {
        let err = soi::num::complex::max_abs_diff(o, &outs[0]);
        assert!(err < 1e-11 * scale, "engine {i} disagrees: {err:e}");
    }
}

#[test]
fn every_engine_clears_250db_against_dd_reference() {
    let n = 1024;
    let x = signal(n);
    let reference = reference_spectrum(&x);
    let engines: Vec<(&str, Vec<Complex64>)> = vec![
        (
            "stockham",
            {
                let mut v = x.clone();
                StockhamFft::new(n, Sign::Forward).execute(&mut v);
                v
            },
        ),
        (
            "split-radix",
            {
                let mut v = x.clone();
                SplitRadixFft::new(n, Sign::Forward).execute(&mut v);
                v
            },
        ),
        (
            "mixed-radix",
            {
                let mut v = x.clone();
                MixedRadixFft::new(n, Sign::Forward).execute(&mut v);
                v
            },
        ),
        (
            "bluestein",
            {
                let mut v = x.clone();
                BluesteinFft::new(n, Sign::Forward).execute(&mut v);
                v
            },
        ),
    ];
    for (name, y) in engines {
        let snr = snr_db_vs_pairs(&y, &reference);
        assert!(snr > 250.0, "{name}: SNR {snr:.0} dB");
    }
}

#[test]
fn mixed_and_bluestein_agree_at_awkward_sizes() {
    for n in [360usize, 500, 729, 1001] {
        let x = signal(n);
        let mut a = x.clone();
        MixedRadixFft::new(n, Sign::Forward).execute(&mut a);
        let mut b = x;
        BluesteinFft::new(n, Sign::Forward).execute(&mut b);
        let scale: f64 = a.iter().map(|v| v.abs()).fold(0.0, f64::max);
        let err = soi::num::complex::max_abs_diff(&a, &b);
        assert!(err < 1e-10 * scale, "n={n}: {err:e}");
    }
}

#[test]
fn planner_one_shot_equals_direct_engines() {
    let n = 512;
    let x = signal(n);
    let via_planner = soi::fft::fft_forward(&x);
    let mut direct = x;
    StockhamFft::new(n, Sign::Forward).execute(&mut direct);
    assert_eq!(
        via_planner
            .iter()
            .map(|v| (v.re, v.im))
            .collect::<Vec<_>>(),
        direct.iter().map(|v| (v.re, v.im)).collect::<Vec<_>>(),
        "planner must dispatch to the same engine bitwise"
    );
}
