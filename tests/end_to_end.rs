//! Cross-crate integration: the whole stack, input to in-order spectrum.
//!
//! Chain exercised: window design (soi-window) → SOI plan (soi-core) →
//! distributed execution with real data movement (soi-dist over
//! soi-simnet) → validated against the from-scratch FFT library (soi-fft)
//! and the double-double reference (soi-num/soi-fft::ddfft).

use soi::core::{SoiFft, SoiParams};
use soi::dist::{BaselineFft, ChargePolicy, DistSoiFft, ExchangeVariant};
use soi::num::complex::rel_l2_error;
use soi::num::stats::snr_db_vs_pairs;
use soi::num::Complex64;
use soi::simnet::{Cluster, Fabric};
use soi::window::AccuracyPreset;

fn signal(n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|j| Complex64::new((j as f64 * 0.43).sin() + 0.2, (j as f64 * 0.91).cos()))
        .collect()
}

fn scatter_run_soi(n: usize, p: usize, preset: AccuracyPreset, fabric: Fabric) -> Vec<Complex64> {
    let params = SoiParams::with_preset(n, p, preset).expect("params");
    let dist = DistSoiFft::new(&params).expect("plan");
    let x = signal(n);
    let m = n / p;
    let (xr, dr) = (&x, &dist);
    Cluster::new(p, fabric)
        .run_collect(move |comm| {
            let local = &xr[comm.rank() * m..(comm.rank() + 1) * m];
            dr.run(comm, local, ChargePolicy::WallClock).expect("soi run").0
        })
        .into_iter()
        .flatten()
        .collect()
}

#[test]
fn four_way_agreement_serial_distributed_baseline_exact() {
    let n = 1 << 12;
    let p = 4;
    let x = signal(n);
    let exact = soi::fft::fft_forward(&x);

    // Serial SOI.
    let params = SoiParams::with_preset(n, p, AccuracyPreset::Digits12).expect("params");
    let serial = SoiFft::new(&params).expect("plan").transform(&x).unwrap();

    // Distributed SOI.
    let dist = scatter_run_soi(n, p, AccuracyPreset::Digits12, Fabric::Ideal);

    // Distributed baseline.
    let plan = BaselineFft::new(n, p, ExchangeVariant::Collective);
    let m = n / p;
    let (xr, pr) = (&x, &plan);
    let baseline: Vec<Complex64> = Cluster::ideal(p)
        .run_collect(move |comm| {
            let local = &xr[comm.rank() * m..(comm.rank() + 1) * m];
            pr.run(comm, local, ChargePolicy::WallClock).expect("baseline run").0
        })
        .into_iter()
        .flatten()
        .collect();

    assert!(rel_l2_error(&baseline, &exact) < 1e-11, "baseline vs exact");
    assert!(rel_l2_error(&serial, &exact) < 1e-10, "serial SOI vs exact");
    assert!(rel_l2_error(&dist, &serial) < 1e-13, "distributed vs serial SOI");
}

#[test]
fn distributed_soi_full_accuracy_snr_against_dd_reference() {
    // The §7.2 claim on the real distributed path: full-accuracy SOI
    // should land in the 270–310 dB band against a dd-precise reference.
    let n = 1 << 13;
    let p = 4;
    let x = signal(n);
    let reference = soi::fft::ddfft::reference_spectrum(&x);
    let y = scatter_run_soi(n, p, AccuracyPreset::Full, Fabric::Ideal);
    let snr = snr_db_vs_pairs(&y, &reference);
    assert!(snr > 260.0, "distributed full-accuracy SOI SNR = {snr} dB");
}

#[test]
fn works_on_every_paper_fabric_model() {
    let design = AccuracyPreset::Digits10.design(0.25).expect("design");
    let bound = 10.0 * design.predicted_error();
    for fabric in [
        Fabric::endeavor_fat_tree(),
        Fabric::gordon_torus(),
        Fabric::ethernet_10g(),
    ] {
        let y = scatter_run_soi(1 << 12, 4, AccuracyPreset::Digits10, fabric.clone());
        let exact = soi::fft::fft_forward(&signal(1 << 12));
        let err = rel_l2_error(&y, &exact);
        assert!(
            err < bound,
            "fabric {}: err {err:e} vs bound {bound:e}",
            fabric.name()
        );
    }
}

#[test]
fn comm_volume_advantage_holds_end_to_end() {
    // SOI wire bytes ≈ (1+β)/3 of the baseline's across the whole run.
    let n = 1 << 12;
    let p = 4;
    let x = signal(n);
    let m = n / p;

    let params = SoiParams::with_preset(n, p, AccuracyPreset::Digits10).expect("params");
    let dist = DistSoiFft::new(&params).expect("plan");
    let (xr, dr) = (&x, &dist);
    let soi_bytes: u64 = Cluster::ideal(p)
        .run(move |comm| {
            let local = &xr[comm.rank() * m..(comm.rank() + 1) * m];
            dr.run(comm, local, ChargePolicy::WallClock).expect("soi run").0
        })
        .iter()
        .map(|(_, r)| r.stats.bytes_sent)
        .sum();

    let plan = BaselineFft::new(n, p, ExchangeVariant::Collective);
    let (xr, pr) = (&x, &plan);
    let base_bytes: u64 = Cluster::ideal(p)
        .run(move |comm| {
            let local = &xr[comm.rank() * m..(comm.rank() + 1) * m];
            pr.run(comm, local, ChargePolicy::WallClock).expect("baseline run").0
        })
        .iter()
        .map(|(_, r)| r.stats.bytes_sent)
        .sum();

    let ratio = base_bytes as f64 / soi_bytes as f64;
    assert!((1.8..3.0).contains(&ratio), "wire-byte ratio {ratio}");
}

#[test]
fn pairwise_exchange_variant_end_to_end() {
    let n = 1 << 12;
    let p = 4;
    let x = signal(n);
    let m = n / p;
    let plan = BaselineFft::new(n, p, ExchangeVariant::Pairwise);
    let (xr, pr) = (&x, &plan);
    let y: Vec<Complex64> = Cluster::new(p, Fabric::gordon_torus())
        .run_collect(move |comm| {
            let local = &xr[comm.rank() * m..(comm.rank() + 1) * m];
            pr.run(comm, local, ChargePolicy::WallClock).expect("baseline run").0
        })
        .into_iter()
        .flatten()
        .collect();
    let exact = soi::fft::fft_forward(&x);
    assert!(rel_l2_error(&y, &exact) < 1e-11);
}

#[test]
fn larger_cluster_and_odd_segment_count() {
    // P = 10: non-power-of-two segment count through mixed-radix F_P.
    let n = 10 * 4000;
    let p = 10;
    let y = scatter_run_soi(n, p, AccuracyPreset::Digits10, Fabric::Ideal);
    let exact = soi::fft::fft_forward(&signal(n));
    let design = AccuracyPreset::Digits10.design(0.25).expect("design");
    let err = rel_l2_error(&y, &exact);
    assert!(err < 10.0 * design.predicted_error(), "err {err:e}");
}
