//! Golden-vector regression tests for the FFT kernels.
//!
//! The committed spectra below were computed once by the double-double
//! reference transform (`soi-fft::ddfft::reference_spectrum`, ~31 digits,
//! rounded to f64 at the very end) over bit-exact inputs drawn from the
//! testkit PRNG (`TestRng::seed_from_u64(2012).complex_vec(n)` — integer
//! arithmetic plus scaling by powers of two, so identical on every
//! platform). Kernel refactors that silently drift the forward or
//! inverse transforms fail here even if self-consistency tests
//! (roundtrip, Parseval) still pass.
//!
//! Sizes cover both planner paths the dd oracle distinguishes: 4/8/16
//! (radix-2 Stockham) and 12 (mixed-radix via the naive dd DFT).
//!
//! Regenerate (only after an *intentional* convention change) by printing
//! `reference_spectrum(&TestRng::seed_from_u64(2012).complex_vec(n))`
//! with `{:.17e}`.

use soi::fft::{fft_forward, fft_inverse};
use soi::num::Complex64;
use soi_testkit::TestRng;

const GOLDEN_4: [(f64, f64); 4] = [
    (-2.08101504396824710e0, -4.46748677895978608e-1),
    (-7.18813569901904925e-1, 5.24311001070564942e-1),
    (7.23028832391642062e-1, -7.11857705802641183e-1),
    (-1.88285303151563599e0, 7.08379578613214544e-1),
];

const GOLDEN_8: [(f64, f64); 8] = [
    (-2.90212488279185798e0, -1.13259363328093166e-1),
    (-1.86791653771508259e0, 2.22312716121845533e0),
    (-2.28936952351443956e0, -6.68946743694789348e-1),
    (2.55840848979181504e-3, 9.11263309330358484e-2),
    (1.80760629331826217e0, -1.73641589690754783e0),
    (-1.37117435453094383e0, -1.51877828087294362e-2),
    (-2.35034967264594030e0, -6.91248533913789931e-1),
    (1.05146464340191859e0, 1.05897322047177789e0),
];

const GOLDEN_12: [(f64, f64); 12] = [
    (-1.02972656904091520e0, -5.08059323983630851e-1),
    (-2.23273243672745147e0, 1.94779643491369581e0),
    (-1.02139048446312011e-1, 9.71705216627527846e-1),
    (-2.14722268191050780e-1, -1.31597204180748339e0),
    (1.49164249118457981e0, 4.14924154874602991e0),
    (-2.36773411663179756e0, 2.48480249792309094e0),
    (7.60550855767792688e-1, -2.21080170036328827e0),
    (-2.81545809373836597e0, -9.77916690137564437e-1),
    (-1.86035950266065098e0, -1.11297075815122870e0),
    (-2.49009445363714610e0, -1.47607397396637485e0),
    (-1.74716712102694127e0, 1.67473678223533629e0),
    (7.28981824165820913e-1, -3.40423540408063063e0),
];

const GOLDEN_16: [(f64, f64); 16] = [
    (-2.23349793118110762e-1, 9.52182864143690688e-1),
    (-3.42046050602725282e0, 2.96597202390653303e0),
    (-2.19437923777872568e0, 3.10114404070765959e0),
    (-1.95581901780272882e0, 5.38345864806599739e-1),
    (-7.25567759954720781e-1, -2.43352442157874282e0),
    (-1.70639334478646587e0, 3.92713942524041215e0),
    (8.03818891634793586e-1, -1.00695355031982614e0),
    (-9.71068614397736618e-1, 4.49628889974601442e0),
    (-1.59783616629941227e0, -3.51837371825555323e0),
    (-2.21488927125874646e0, -4.99939600720523636e0),
    (7.02618098548515868e-1, -1.28841889582136271e0),
    (-1.15916881357293833e0, -2.08182005572596307e-1),
    (-2.41831794138001532e0, -2.02518146816602274e0),
    (-1.14812007154786677e0, 2.64911003308898052e-1),
    (3.25419898342469649e0, 1.76522053670736256e0),
    (-8.63876687659869136e-1, -2.23483780770719065e0),
];

/// The bit-exact golden input for size `n`.
fn golden_input(n: usize) -> Vec<Complex64> {
    TestRng::seed_from_u64(2012).complex_vec(n)
}

fn golden_spectrum(n: usize) -> Vec<Complex64> {
    let table: &[(f64, f64)] = match n {
        4 => &GOLDEN_4,
        8 => &GOLDEN_8,
        12 => &GOLDEN_12,
        16 => &GOLDEN_16,
        _ => panic!("no golden table for n={n}"),
    };
    table.iter().map(|&(re, im)| Complex64::new(re, im)).collect()
}

const SIZES: [usize; 4] = [4, 8, 12, 16];

#[test]
fn forward_matches_dd_reference_golden() {
    for n in SIZES {
        let y = fft_forward(&golden_input(n));
        let want = golden_spectrum(n);
        for k in 0..n {
            let err = (y[k] - want[k]).abs();
            assert!(
                err < 1e-13 * n as f64,
                "n={n} bin {k}: got {:?}, want {:?} (err {err:e})",
                y[k],
                want[k]
            );
        }
    }
}

#[test]
fn inverse_recovers_input_from_golden_spectrum() {
    for n in SIZES {
        let x = golden_input(n);
        let back = fft_inverse(&golden_spectrum(n));
        for j in 0..n {
            let err = (back[j] - x[j]).abs();
            assert!(
                err < 1e-13 * n as f64,
                "n={n} sample {j}: got {:?}, want {:?} (err {err:e})",
                back[j],
                x[j]
            );
        }
    }
}

#[test]
fn golden_tables_are_not_self_consistent_noise() {
    // Sanity on the tables themselves: Parseval ties the committed
    // spectrum to the committed input, catching a corrupted constant.
    for n in SIZES {
        let ex: f64 = golden_input(n).iter().map(|v| v.norm_sqr()).sum();
        let ey: f64 = golden_spectrum(n).iter().map(|v| v.norm_sqr()).sum();
        assert!(
            (ey - n as f64 * ex).abs() < 1e-12 * (1.0 + ey),
            "n={n}: {ey} vs {}",
            n as f64 * ex
        );
    }
}
