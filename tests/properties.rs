//! Property-based tests (soi-testkit harness) on the core invariants of
//! the stack.
//!
//! These complement the example-based unit tests inside each crate with
//! randomized coverage of the algebraic identities everything relies on:
//! DFT linearity/unitarity, Stockham-vs-oracle agreement at arbitrary
//! sizes, stride-permutation bijectivity, double-double arithmetic, and
//! SOI's agreement with the exact transform on random inputs.
//!
//! Each property runs a fixed number of cases from the testkit's fixed
//! default seed, so two consecutive runs exercise identical RNG streams.
//! On failure the harness prints the case seed and a
//! `SOI_TESTKIT_REPLAY=…` recipe to re-run exactly that input.

use soi::core::{SoiFft, SoiParams};
use soi::fft::{fft_forward, fft_inverse, Plan};
use soi::num::complex::{max_abs_diff, rel_l2_error};
use soi::num::dd::Dd;
use soi::num::Complex64;
use soi::window::AccuracyPreset;
use soi_testkit::{check, PropConfig};

#[test]
fn fft_roundtrip_arbitrary_sizes() {
    check("fft_roundtrip_arbitrary_sizes", PropConfig::cases(16), |rng| {
        let n = rng.usize_in(1..300);
        let x = rng.complex_vec(n);
        let back = fft_inverse(&fft_forward(&x));
        assert!(max_abs_diff(&back, &x) < 1e-10, "n={n}");
    });
}

#[test]
fn fft_is_linear() {
    check("fft_is_linear", PropConfig::cases(16), |rng| {
        let x = rng.complex_vec(64);
        let y = rng.complex_vec(64);
        let a = rng.f64_in(-2.0..2.0);
        let sum: Vec<Complex64> = x.iter().zip(&y).map(|(&u, &v)| u.scale(a) + v).collect();
        let lhs = fft_forward(&sum);
        let fx = fft_forward(&x);
        let fy = fft_forward(&y);
        for k in 0..64 {
            let want = fx[k].scale(a) + fy[k];
            assert!((lhs[k] - want).abs() < 1e-10, "bin {k}");
        }
    });
}

#[test]
fn parseval_holds() {
    check("parseval_holds", PropConfig::cases(16), |rng| {
        let x = rng.complex_vec(128);
        let y = fft_forward(&x);
        let ex: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|v| v.norm_sqr()).sum();
        assert!((ey - 128.0 * ex).abs() <= 1e-9 * (1.0 + ey.abs()));
    });
}

#[test]
fn shift_theorem_random_shift() {
    check("shift_theorem_random_shift", PropConfig::cases(16), |rng| {
        // The identity behind SOI's segment recovery (§5).
        let n = 96;
        let x = rng.complex_vec(n);
        let s = rng.usize_in(0..n);
        let shifted: Vec<Complex64> = (0..n).map(|j| x[(j + s) % n]).collect();
        let y = fft_forward(&x);
        let ys = fft_forward(&shifted);
        for k in (0..n).step_by(7) {
            let w = Complex64::root_of_unity(k * s % n, n).conj();
            assert!((ys[k] - y[k] * w).abs() < 1e-9, "bin {k} shift {s}");
        }
    });
}

#[test]
fn stride_permutation_is_a_bijection() {
    check("stride_permutation_is_a_bijection", PropConfig::cases(16), |rng| {
        let lg_l = rng.usize_in(1..5);
        let lg_rest = rng.usize_in(1..5);
        let l = 1usize << lg_l;
        let n = l << lg_rest;
        let v: Vec<u32> = (0..n as u32).collect();
        let mut w = vec![0u32; n];
        soi::fft::permute::stride_permute(&v, &mut w, l);
        let mut seen = vec![false; n];
        for &x in &w {
            assert!(!seen[x as usize], "duplicate {x} (l={l}, n={n})");
            seen[x as usize] = true;
        }
        // And inverse really inverts.
        let mut back = vec![0u32; n];
        soi::fft::permute::stride_unpermute(&w, &mut back, l);
        assert_eq!(back, v, "l={l}, n={n}");
    });
}

#[test]
fn dd_addition_is_exactly_associative_enough() {
    check(
        "dd_addition_is_exactly_associative_enough",
        PropConfig::cases(16),
        |rng| {
            // dd carries ~32 digits: (a+b)+c and (a+c)+b agree far beyond f64.
            let a = rng.f64_in(-1e8..1e8);
            let b = rng.f64_in(-1e-8..1e-8);
            let c = rng.f64_in(-1e8..1e8);
            let x = (Dd::from_f64(a) + Dd::from_f64(b)) + Dd::from_f64(c);
            let y = (Dd::from_f64(a) + Dd::from_f64(c)) + Dd::from_f64(b);
            assert!((x - y).abs().hi <= 1e-24 * (1.0 + a.abs() + c.abs()));
        },
    );
}

#[test]
fn dd_mul_matches_f64_to_f64_precision() {
    check(
        "dd_mul_matches_f64_to_f64_precision",
        PropConfig::cases(16),
        |rng| {
            let a = rng.f64_in(-1e6..1e6);
            let b = rng.f64_in(-1e6..1e6);
            let d = Dd::from_f64(a) * Dd::from_f64(b);
            // The dd product's leading word is the correctly rounded product.
            assert_eq!(d.hi, a * b);
        },
    );
}

#[test]
fn real_fft_matches_complex_fft() {
    check("real_fft_matches_complex_fft", PropConfig::cases(16), |rng| {
        let n = rng.usize_in(2..80) * 2;
        let x = rng.f64_vec(n, -1.0..1.0);
        let spec = soi::fft::realfft::RealFft::new(n).forward(&x);
        let xc: Vec<Complex64> = x.iter().map(|&v| Complex64::new(v, 0.0)).collect();
        let full = fft_forward(&xc);
        for k in 0..=n / 2 {
            assert!((spec[k] - full[k]).abs() < 1e-9 * n as f64, "n={n} bin {k}");
        }
    });
}

// SOI transforms are heavier; fewer cases.

#[test]
fn soi_matches_exact_fft_on_random_input() {
    check(
        "soi_matches_exact_fft_on_random_input",
        PropConfig::cases(4),
        |rng| {
            let n = 1 << 11;
            let p = 4;
            let x = rng.complex_vec(n);
            let params = SoiParams::with_preset(n, p, AccuracyPreset::Digits10).unwrap();
            let soi = SoiFft::new(&params).unwrap();
            let y = soi.transform(&x).unwrap();
            let exact = fft_forward(&x);
            let err = rel_l2_error(&y, &exact);
            assert!(err < 2e-7, "rel l2 error {err:e}");
        },
    );
}

#[test]
fn soi_segment_consistency_random_segment() {
    check(
        "soi_segment_consistency_random_segment",
        PropConfig::cases(4),
        |rng| {
            let n = 1 << 11;
            let p = 4;
            let x = rng.complex_vec(n);
            let s = rng.usize_in(0..p);
            let params = SoiParams::with_preset(n, p, AccuracyPreset::Digits10).unwrap();
            let soi = SoiFft::new(&params).unwrap();
            let full = soi.transform(&x).unwrap();
            let seg = soi.transform_segment(&x, s).unwrap();
            let m = n / p;
            let err = rel_l2_error(&seg, &full[s * m..(s + 1) * m]);
            assert!(err < 1e-8, "segment {s} rel l2 error {err:e}");
        },
    );
}

#[test]
fn planner_covers_smooth_and_prime_sizes() {
    // Deterministic sweep across planner paths at moderate sizes.
    for n in [2usize, 30, 97, 128, 210, 512, 625, 1009] {
        let x: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.5).cos()))
            .collect();
        let plan = Plan::forward(n);
        let mut got = x.clone();
        plan.execute(&mut got);
        let want = soi::fft::dft::dft_naive(&x);
        assert!(
            max_abs_diff(&got, &want) < 1e-8 * n as f64,
            "n={n} engine={}",
            plan.engine_name()
        );
    }
}

#[test]
fn property_suite_uses_identical_streams_run_to_run() {
    // The determinism contract the whole suite stands on: PropConfig with
    // the default seed derives the same case seeds every invocation.
    let a = PropConfig::cases(16);
    let b = PropConfig::cases(16);
    assert_eq!(a, b);
    for case in 0..16 {
        assert_eq!(a.case_seed(case), b.case_seed(case));
    }
}
