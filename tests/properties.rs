//! Property-based tests (proptest) on the core invariants of the stack.
//!
//! These complement the example-based unit tests inside each crate with
//! randomized coverage of the algebraic identities everything relies on:
//! DFT linearity/unitarity, Stockham-vs-oracle agreement at arbitrary
//! sizes, stride-permutation bijectivity, double-double arithmetic, and
//! SOI's agreement with the exact transform on random inputs.

use proptest::prelude::*;
use soi::core::{SoiFft, SoiParams};
use soi::fft::{fft_forward, fft_inverse, Plan};
use soi::num::complex::{max_abs_diff, rel_l2_error};
use soi::num::dd::Dd;
use soi::num::Complex64;
use soi::window::AccuracyPreset;

fn complex_vec(n: usize) -> impl Strategy<Value = Vec<Complex64>> {
    prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), n..=n)
        .prop_map(|v| v.into_iter().map(|(re, im)| Complex64::new(re, im)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn fft_roundtrip_arbitrary_sizes(n in 1usize..300, seed in any::<u64>()) {
        let x: Vec<Complex64> = (0..n)
            .map(|i| {
                let t = (i as u64).wrapping_mul(seed | 1) as f64 / u64::MAX as f64;
                Complex64::new((t * 6.28).sin(), (t * 12.0).cos())
            })
            .collect();
        let back = fft_inverse(&fft_forward(&x));
        prop_assert!(max_abs_diff(&back, &x) < 1e-10);
    }

    #[test]
    fn fft_is_linear(x in complex_vec(64), y in complex_vec(64), a in -2.0f64..2.0) {
        let lhs: Vec<Complex64> = {
            let sum: Vec<Complex64> = x.iter().zip(&y).map(|(&u, &v)| u.scale(a) + v).collect();
            fft_forward(&sum)
        };
        let fx = fft_forward(&x);
        let fy = fft_forward(&y);
        for k in 0..64 {
            let want = fx[k].scale(a) + fy[k];
            prop_assert!((lhs[k] - want).abs() < 1e-10);
        }
    }

    #[test]
    fn parseval_holds(x in complex_vec(128)) {
        let y = fft_forward(&x);
        let ex: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|v| v.norm_sqr()).sum();
        prop_assert!((ey - 128.0 * ex).abs() <= 1e-9 * (1.0 + ey.abs()));
    }

    #[test]
    fn shift_theorem_random_shift(x in complex_vec(96), s in 0usize..96) {
        // The identity behind SOI's segment recovery (§5).
        let n = 96;
        let shifted: Vec<Complex64> = (0..n).map(|j| x[(j + s) % n]).collect();
        let y = fft_forward(&x);
        let ys = fft_forward(&shifted);
        for k in (0..n).step_by(7) {
            let w = Complex64::root_of_unity(k * s % n, n).conj();
            prop_assert!((ys[k] - y[k] * w).abs() < 1e-9);
        }
    }

    #[test]
    fn stride_permutation_is_a_bijection(lg_l in 1usize..5, lg_rest in 1usize..5) {
        let l = 1usize << lg_l;
        let n = l << lg_rest;
        let v: Vec<u32> = (0..n as u32).collect();
        let mut w = vec![0u32; n];
        soi::fft::permute::stride_permute(&v, &mut w, l);
        let mut seen = vec![false; n];
        for &x in &w {
            prop_assert!(!seen[x as usize]);
            seen[x as usize] = true;
        }
        // And inverse really inverts.
        let mut back = vec![0u32; n];
        soi::fft::permute::stride_unpermute(&w, &mut back, l);
        prop_assert_eq!(back, v);
    }

    #[test]
    fn dd_addition_is_exactly_associative_enough(a in -1e8f64..1e8, b in -1e-8f64..1e-8, c in -1e8f64..1e8) {
        // dd carries ~32 digits: (a+b)+c and (a+c)+b agree far beyond f64.
        let x = (Dd::from_f64(a) + Dd::from_f64(b)) + Dd::from_f64(c);
        let y = (Dd::from_f64(a) + Dd::from_f64(c)) + Dd::from_f64(b);
        prop_assert!((x - y).abs().hi <= 1e-24 * (1.0 + a.abs() + c.abs()));
    }

    #[test]
    fn dd_mul_matches_f64_to_f64_precision(a in -1e6f64..1e6, b in -1e6f64..1e6) {
        let d = Dd::from_f64(a) * Dd::from_f64(b);
        // The dd product's leading word is the correctly rounded product.
        prop_assert_eq!(d.hi, a * b);
    }

    #[test]
    fn real_fft_matches_complex_fft(n2 in 2usize..80) {
        let n = n2 * 2;
        let x: Vec<f64> = (0..n).map(|i| ((i * i) as f64 * 0.01).sin()).collect();
        let spec = soi::fft::realfft::RealFft::new(n).forward(&x);
        let xc: Vec<Complex64> = x.iter().map(|&v| Complex64::new(v, 0.0)).collect();
        let full = fft_forward(&xc);
        for k in 0..=n / 2 {
            prop_assert!((spec[k] - full[k]).abs() < 1e-9 * n as f64);
        }
    }
}

proptest! {
    // SOI transforms are heavier; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn soi_matches_exact_fft_on_random_input(seed in any::<u64>()) {
        let n = 1 << 11;
        let p = 4;
        let x: Vec<Complex64> = (0..n)
            .map(|i| {
                let t = (i as u64).wrapping_mul(seed | 1) as f64 / u64::MAX as f64;
                Complex64::new(2.0 * t - 1.0, (t * 37.0).fract() - 0.5)
            })
            .collect();
        let params = SoiParams::with_preset(n, p, AccuracyPreset::Digits10).unwrap();
        let soi = SoiFft::new(&params).unwrap();
        let y = soi.transform(&x).unwrap();
        let exact = fft_forward(&x);
        prop_assert!(rel_l2_error(&y, &exact) < 2e-7);
    }

    #[test]
    fn soi_segment_consistency_random_segment(seed in any::<u64>(), s in 0usize..4) {
        let n = 1 << 11;
        let p = 4;
        let x: Vec<Complex64> = (0..n)
            .map(|i| {
                let t = (i as u64).wrapping_mul(seed | 1) as f64 / u64::MAX as f64;
                Complex64::new(t, 1.0 - t)
            })
            .collect();
        let params = SoiParams::with_preset(n, p, AccuracyPreset::Digits10).unwrap();
        let soi = SoiFft::new(&params).unwrap();
        let full = soi.transform(&x).unwrap();
        let seg = soi.transform_segment(&x, s).unwrap();
        let m = n / p;
        prop_assert!(rel_l2_error(&seg, &full[s * m..(s + 1) * m]) < 1e-8);
    }
}

#[test]
fn planner_covers_smooth_and_prime_sizes() {
    // Deterministic sweep across planner paths at moderate sizes.
    for n in [2usize, 30, 97, 128, 210, 512, 625, 1009] {
        let x: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.5).cos()))
            .collect();
        let plan = Plan::forward(n);
        let mut got = x.clone();
        plan.execute(&mut got);
        let want = soi::fft::dft::dft_naive(&x);
        assert!(
            max_abs_diff(&got, &want) < 1e-8 * n as f64,
            "n={n} engine={}",
            plan.engine_name()
        );
    }
}
